package check

import (
	"bytes"
	"fmt"
	"sync"

	"saccs/internal/index"
	"saccs/internal/search"
	"saccs/internal/sim"
)

// Differential oracles: run the same computation two ways and require
// bit-identical results. Each oracle is deterministic in its seed.

// buildIndex builds a fresh index over the conceptual measure.
func buildIndex(tags []string, ents []index.EntityReviews, theta float64, workers int) *index.Index {
	ix := index.New(sim.NewConceptual(), theta)
	if workers != 0 {
		ix.SetWorkers(workers)
	}
	ix.Build(tags, ents)
	return ix
}

// BuildOracle checks that Index.Build is schedule-independent: a serial build
// (one worker), parallel builds at every worker count in workers, and an
// incremental AddTag-per-tag build must all produce identical indexes.
func BuildOracle(seed int64, nTags, nEntities int, workers []int) error {
	g := NewGen(seed)
	tags := g.Tags(nTags)
	ents := g.Entities(nEntities)
	serial := buildIndex(tags, ents, 0.55, 1)
	for _, w := range workers {
		par := buildIndex(tags, ents, 0.55, w)
		if err := DiffIndexes(serial, par); err != nil {
			return fmt.Errorf("serial vs %d-worker build (seed %d): %w", w, seed, err)
		}
	}
	incr := index.New(sim.NewConceptual(), 0.55)
	for _, t := range tags {
		incr.AddTag(t, ents)
	}
	if err := DiffIndexes(serial, incr); err != nil {
		return fmt.Errorf("batch Build vs incremental AddTag (seed %d): %w", seed, err)
	}
	return nil
}

// PersistOracle checks the persistence round trip: a saved-then-loaded index
// must diff clean against the original, and re-saving the loaded index must
// reproduce the snapshot byte for byte.
func PersistOracle(seed int64, nTags, nEntities int) error {
	g := NewGen(seed)
	ix := buildIndex(g.Tags(nTags), g.Entities(nEntities), 0.55, 0)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		return fmt.Errorf("persist oracle (seed %d): save: %w", seed, err)
	}
	re := index.New(sim.NewConceptual(), 0.55)
	if err := re.Load(bytes.NewReader(buf.Bytes())); err != nil {
		return fmt.Errorf("persist oracle (seed %d): load: %w", seed, err)
	}
	if err := DiffIndexes(ix, re); err != nil {
		return fmt.Errorf("persisted vs rebuilt index (seed %d): %w", seed, err)
	}
	var buf2 bytes.Buffer
	if err := re.Save(&buf2); err != nil {
		return fmt.Errorf("persist oracle (seed %d): re-save: %w", seed, err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		return fmt.Errorf("persist oracle (seed %d): snapshot not byte-stable across save/load/save", seed)
	}
	return nil
}

// MemoOracle checks that sim.Memo is transparent: on a random pair stream
// (with repeats, and with a capacity small enough to force whole-shard
// evictions) every memoized Phrase and Base result must equal the raw
// measure's, and the hit/miss accounting must add up.
func MemoOracle(seed int64, pairs, capacity int) error {
	g := NewGen(seed)
	raw := sim.NewConceptual()
	memo := sim.NewMemoCapacity(sim.NewConceptual(), capacity)
	pool := g.Tags(24)
	for i := 0; i < pairs; i++ {
		a, b := g.pick(pool), g.pick(pool)
		if mp, rp := memo.Phrase(a, b), raw.Phrase(a, b); mp != rp {
			return fmt.Errorf("memo oracle (seed %d): Phrase(%q, %q): memo %.17g, raw %.17g", seed, a, b, mp, rp)
		}
		mb, mc := memo.Base(a, b)
		rb, rc := raw.Base(a, b)
		if mb != rb || mc != rc {
			return fmt.Errorf("memo oracle (seed %d): Base(%q, %q): memo (%.17g, %v), raw (%.17g, %v)",
				seed, a, b, mb, mc, rb, rc)
		}
	}
	hits, misses, _ := memo.Stats()
	if hits+misses != int64(2*pairs) {
		return fmt.Errorf("memo oracle (seed %d): hits %d + misses %d != %d lookups", seed, hits, misses, 2*pairs)
	}
	return nil
}

// rankQuery is one Rank invocation's inputs.
type rankQuery struct {
	api  []string
	tags []string
}

// QueryOracle checks that ranking is concurrency-independent. Phase one: a
// random query workload (known and unknown tags) is ranked once serially,
// then replayed from `goroutines` goroutines against the same index — every
// result list must be identical to the serial baseline. Phase two: queries
// restricted to exact indexed tags are replayed while a concurrent Build adds
// unrelated tags; exact-hit resolution must be unaffected by the writer.
func QueryOracle(seed int64, goroutines, queries int) error {
	g := NewGen(seed)
	tags := g.Tags(12)
	ents := g.Entities(48)
	ix := buildIndex(tags, ents, 0.55, 0)
	rk := &search.Ranker{Index: ix, ThetaFilter: 0.45, Agg: search.MeanAgg}

	ids := make([]string, len(ents))
	for i, e := range ents {
		ids[i] = e.EntityID
	}

	mixed := make([]rankQuery, queries)
	exact := make([]rankQuery, queries)
	for i := range mixed {
		qt := []string{g.pick(tags)}
		if g.rng.Intn(2) == 0 {
			qt = append(qt, g.Tag()) // possibly unknown → similar-tag union
		}
		mixed[i] = rankQuery{api: g.subset(ids), tags: qt}
		exact[i] = rankQuery{api: g.subset(ids), tags: []string{g.pick(tags), g.pick(tags)}}
	}

	serialRank := func(qs []rankQuery) [][]search.Scored {
		out := make([][]search.Scored, len(qs))
		for i, q := range qs {
			out[i] = rk.Rank(q.api, q.tags)
		}
		return out
	}
	replay := func(qs []rankQuery, want [][]search.Scored, label string) error {
		errs := make(chan error, goroutines)
		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each goroutine starts at a different offset so lock
				// interleavings differ across workers.
				for k := 0; k < len(qs); k++ {
					i := (k + w) % len(qs)
					if err := DiffScored(fmt.Sprintf("%s query %d (goroutine %d, seed %d)", label, i, w, seed),
						want[i], rk.Rank(qs[i].api, qs[i].tags)); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	if err := replay(mixed, serialRank(mixed), "concurrent"); err != nil {
		return err
	}

	// Phase two: reads race a writer adding disjoint tags. Exact-hit queries
	// must still match the baseline computed before the build started.
	wantExact := serialRank(exact)
	extra := g.Tags(6)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ix.Build(extra, ents)
	}()
	err := replay(exact, wantExact, "query-during-build")
	<-done
	return err
}
