// Package check is the correctness harness of the reproduction: differential
// oracles, property-based (metamorphic) checks, and a deterministic corpus
// generator that together make the paper's invariants loud when they break.
//
// Three layers, all reusable from tests, `make check`, and future tooling:
//
//   - Differential oracles (oracles.go) compare two implementations or two
//     execution strategies of the same computation — serial vs parallel
//     Index.Build, memoized vs raw similarity, persisted vs rebuilt index,
//     single-goroutine vs concurrent Query — and report the first divergent
//     posting or rank through the structural diff reporter (diff.go).
//
//   - Property checks (props.go) assert the paper's semantic invariants on
//     randomly generated Yelp-world corpora: θ-threshold monotonicity
//     (raising θ never admits new matches, §3.1/Algorithm 1), degree-of-truth
//     monotonicity (a review mention that strengthens a tag never lowers it,
//     Eq. 1), rank totality and permutation stability (§3.3), and
//     word-boundary slot filling.
//
//   - The generator (gen.go) drives both from a seeded PRNG — no wall-clock
//     or global randomness — so every failure is replayable from its seed.
//
// Native fuzz targets (go test -fuzz) for tokenization, utterance parsing,
// CRF decoding, and snapshot persistence live next to their packages; this
// package covers the cross-package pipeline invariants they cannot see.
package check

// Check is one named correctness check. Run returns nil on success and a
// diff-style error naming the first divergence otherwise.
type Check struct {
	Name string
	Run  func() error
}

// DefaultSuite returns the full harness at CI-friendly sizes, every check
// derived deterministically from seed. Running the suite for two different
// seeds exercises disjoint corpora.
func DefaultSuite(seed int64) []Check {
	return []Check{
		{"oracle/build-serial-vs-parallel", func() error {
			return BuildOracle(seed, 14, 48, []int{2, 4, 8})
		}},
		{"oracle/persist-round-trip", func() error {
			return PersistOracle(seed+1, 12, 40)
		}},
		{"oracle/memo-vs-raw", func() error {
			return MemoOracle(seed+2, 600, 64)
		}},
		{"oracle/concurrent-query", func() error {
			return QueryOracle(seed+3, 8, 24)
		}},
		{"oracle/snapshot-pinning", func() error {
			return SnapshotOracle(seed+9, 8, 24)
		}},
		{"prop/theta-filter-monotonic", func() error {
			return ThetaFilterMonotonic(seed+4, 30)
		}},
		{"prop/theta-index-monotonic", func() error {
			return ThetaIndexMonotonic(seed+5, 12)
		}},
		{"prop/strengthen-monotonic", func() error {
			return StrengthenMonotonic(seed+6, 30)
		}},
		{"prop/rank-permutation-invariant", func() error {
			return RankPermutationInvariant(seed+7, 30)
		}},
		{"prop/slot-word-boundary", func() error {
			return SlotWordBoundary(seed+8, 60)
		}},
		{"oracle/extract-cache", func() error {
			return ExtractionCacheOracle(seed+10, 16)
		}},
		{"oracle/extract-batch", func() error {
			return ExtractBatchOracle(seed+11, 24, []int{2, 4, 8})
		}},
		{"oracle/extract-gen-swap", func() error {
			return ExtractGenSwapOracle(seed+12, 6, 12)
		}},
		{"oracle/telemetry-inert", func() error {
			return TelemetryOracle(seed+13, 16)
		}},
		{"oracle/gemm-blocked", func() error {
			return GemmBlockedOracle(seed + 14)
		}},
		{"oracle/extract-batch-live", func() error {
			return ExtractBatchLiveOracle(seed+15, 8, 10)
		}},
		{"oracle/ingest-quiesce", func() error {
			return IngestQuiesceOracle(seed+16, 90, 8)
		}},
		{"oracle/ingest-prefix", func() error {
			return IngestPrefixOracle(seed+17, 6, 48)
		}},
		{"oracle/shard-merge", func() error {
			return ShardMergeOracle(seed+18, []int{1, 2, 3, 5}, 16)
		}},
		{"oracle/quant-drift", func() error {
			return QuantDriftOracle(seed+19, 60, 0.02)
		}},
	}
}
