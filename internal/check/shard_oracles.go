package check

import (
	"context"
	"fmt"
	"sync"

	"saccs/internal/index"
	"saccs/internal/search"
	"saccs/internal/shard"
	"saccs/internal/sim"
)

// ShardMergeOracle checks the scatter-gather contract of internal/shard: for
// every shard count in shards, ranking a random query workload through a
// partitioned router (per-shard top-k, then merge) must be byte-identical to
// ranking the same world on one unsharded index — same entities, same
// scores, same order, same truncation. Phase two replays queries through
// freshly pinned views while one shard continuously republishes the same
// contents; under -race this doubles as a data-race probe, and every result
// must still match the unsharded baseline.
func ShardMergeOracle(seed int64, shards []int, queries int) error {
	g := NewGen(seed)
	tags := g.Tags(12)
	ents := g.Entities(60)
	single := buildIndex(tags, ents, 0.55, 0)

	ids := make([]string, len(ents))
	for i, e := range ents {
		ids[i] = e.EntityID
	}
	qs := make([]rankQuery, queries)
	ks := make([]int, queries)
	for i := range qs {
		qt := []string{g.pick(tags)}
		if g.rng.Intn(2) == 0 {
			qt = append(qt, g.Tag()) // possibly unknown → similar-tag union
		}
		qs[i] = rankQuery{api: g.subset(ids), tags: qt}
		ks[i] = []int{0, 1, 5, 1000}[g.rng.Intn(4)]
	}
	baseline := func(q rankQuery, k int) ([]search.Scored, error) {
		rk := &search.Ranker{Index: single.Current(), ThetaFilter: 0.45, Agg: search.MeanAgg}
		out, err := rk.RankCtx(context.Background(), nil, q.api, q.tags)
		return search.Truncate(out, k), err
	}

	for _, n := range shards {
		// One memo across the shards, as the facade wires it: memoization is
		// transparent, so the oracle also proves the shared-memo router
		// byte-identical to the private-memo baseline.
		memo := sim.NewMemo(sim.NewConceptual())
		r := shard.New(n, search.MeanAgg, func() *index.Index {
			return index.NewWithMemo(memo, 0.55)
		})
		r.Build(tags, ents)
		view := r.Pin()
		for i, q := range qs {
			want, err := baseline(q, ks[i])
			if err != nil {
				return fmt.Errorf("shard-merge oracle (seed %d): baseline query %d: %w", seed, i, err)
			}
			got, err := view.TopK(context.Background(), nil, q.api, q.tags, 0.45, ks[i])
			if err != nil {
				return fmt.Errorf("shard-merge oracle (seed %d, %d shards): query %d: %w", seed, n, i, err)
			}
			if err := DiffScored(fmt.Sprintf("shard-merge %d-shard query %d k=%d (seed %d)", n, i, ks[i], seed),
				want, got); err != nil {
				return err
			}
		}

		// Phase two: pinned queries race one shard's republish of identical
		// contents. A fresh pin may land on either generation; both hold the
		// same postings, so every answer must still equal the baseline.
		parts := r.Partition(ents)
		stop := make(chan struct{})
		var rebuilder sync.WaitGroup
		rebuilder.Add(1)
		go func() {
			defer rebuilder.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Shard(0).Build(tags, parts[0])
			}
		}()
		var firstErr error
		var mu sync.Mutex
		var readers sync.WaitGroup
		for w := 0; w < 4; w++ {
			readers.Add(1)
			go func(w int) {
				defer readers.Done()
				for k := 0; k < len(qs); k++ {
					i := (k + w) % len(qs)
					want, err := baseline(qs[i], ks[i])
					if err == nil {
						var got []search.Scored
						got, err = r.Pin().TopK(context.Background(), nil, qs[i].api, qs[i].tags, 0.45, ks[i])
						if err == nil {
							err = DiffScored(fmt.Sprintf("shard-merge %d-shard racing query %d (goroutine %d, seed %d)", n, i, w, seed),
								want, got)
						}
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(w)
		}
		readers.Wait()
		close(stop)
		rebuilder.Wait()
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}
