package check

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"saccs/internal/bert"
	"saccs/internal/core"
	"saccs/internal/extcache"
	"saccs/internal/mat"
	"saccs/internal/obs"
	"saccs/internal/tagger"
	"saccs/internal/tokenize"
)

// Oracles for the inference fast path: the blocked/vectorized GEMM kernels
// and the cross-request extraction batcher both promise results bit-identical
// to their serial twins. These checks make the promise falsifiable on random
// inputs, from `make check` and the race-enabled test run.

// GemmBlockedOracle compares mat.MatMulInto against a literal
// ascending-k triple loop on adversarial shapes — single rows and columns,
// dimensions off every block and vector-lane multiple, and the production
// layer shapes — requiring bit equality everywhere. The blocked and
// vectorized kernels tile over output rows and columns only, never over k,
// so every output element's summation order is exactly the naive loop's.
func GemmBlockedOracle(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	shapes := [][3]int{
		{1, 1, 1}, {1, 1, 257}, {1, 7, 129}, {129, 7, 1}, {3, 1, 9},
		{2, 256, 8}, {17, 5, 33}, {5, 3, 301}, {6, 31, 300},
		{13, 64, 64}, {13, 64, 128}, {4, 32, 128}, {64, 64, 64},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := mat.NewMat(m, k), mat.NewMat(k, n)
		for i := range a.Data {
			// Mixed magnitudes make floating-point reassociation visible.
			a.Data[i] = (rng.Float64()*2 - 1) * float64(int64(1)<<uint(rng.Intn(20)))
		}
		for i := range b.Data {
			b.Data[i] = (rng.Float64()*2 - 1) * float64(int64(1)<<uint(rng.Intn(20)))
		}
		got := mat.NewMat(m, n)
		mat.MatMulInto(got, a, b)
		for i := 0; i < m; i++ {
			ar := a.Row(i)
			for j := 0; j < n; j++ {
				var s float64
				for kk := 0; kk < k; kk++ {
					s += ar[kk] * b.Data[kk*n+j]
				}
				if got.Data[i*n+j] != s {
					return fmt.Errorf("gemm oracle (seed %d): shape %dx%dx%d element (%d,%d) = %v, naive %v (not bit-equal)",
						seed, m, k, n, i, j, got.Data[i*n+j], s)
				}
			}
		}
	}
	return nil
}

// liveModel builds a small untrained (deterministically initialized)
// MiniBERT-backed tagger — unlike checkModel's hash encoder, this exercises
// the real batched forward (bert InferBatchTokensArena + BiLSTM/CRF batch
// kernels) behind tagger.Model.PredictBatch.
func liveModel(seed int64, sentences [][]string) *tagger.Model {
	v := tokenize.NewVocab()
	for _, s := range sentences {
		v.AddAll(s)
	}
	rng := rand.New(rand.NewSource(seed))
	enc := bert.New(rng, bert.Config{Layers: 1, Heads: 2, Dim: 16, FFDim: 24, MaxLen: 12}, v)
	cfg := tagger.DefaultConfig()
	cfg.Hidden = 8
	cfg.Seed = seed
	return tagger.New(enc, cfg)
}

// ExtractBatchLiveOracle checks the cross-request batcher end to end: many
// goroutines extract concurrently through a batching extractor backed by the
// real batched MiniBERT+BiLSTM-CRF forward, and every result must be
// bit-identical to the serial, unbatched pipeline — including callers
// cancelled mid-stream, which must fail with their context's error and
// nothing else. Run under -race this also proves the gather protocol free of
// data races.
func ExtractBatchLiveOracle(seed int64, goroutines, nSentences int) error {
	g := NewGen(seed)
	sentences := make([][]string, nSentences)
	for i := range sentences {
		sentences[i] = tokenize.Words(g.Utterance())
	}
	m := liveModel(seed+4, sentences)
	p := checkPairer()

	serial := &core.Extractor{Tagger: m, Pairer: p}
	want := make([][]string, nSentences)
	for i, s := range sentences {
		want[i] = serial.ExtractFromTokens(s)
	}

	o := obs.NewObserver()
	// The window must dwarf one race-slowed decode: the solo bypass treats an
	// arrival gap wider than the window as sparse traffic, and under -race a
	// decode (hence the gap between a worker's back-to-back calls) can exceed
	// a production-sized window, which would solo every request on one CPU.
	// 20ms keeps the gather engaged; cohort sealing means callers almost never
	// wait the full window.
	batched := &core.Extractor{
		Tagger: m, Pairer: p, Cache: extcache.New(256), Obs: o,
		BatchWindow: 20 * time.Millisecond, BatchMaxSize: 8,
	}

	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for k := range sentences {
					i := (k + w) % len(sentences)
					text := joinWords(sentences[i])
					if w == goroutines-1 && pass == 1 {
						// One caller races cancellation against its cohort:
						// it must get a context error or the exact serial
						// tags, and the other members are unaffected.
						ctx, cancel := context.WithCancel(context.Background())
						go cancel()
						got, err := batched.ExtractTagsCtx(ctx, nil, text)
						if err == nil && DiffStrings("", want[i], got) != nil {
							errs <- fmt.Errorf("batch-live oracle (seed %d): cancelled caller sentence %d: %v (neither serial tags nor ctx error)",
								seed, i, got)
							return
						}
						continue
					}
					got, err := batched.ExtractTagsCtx(context.Background(), nil, text)
					if err != nil {
						errs <- fmt.Errorf("batch-live oracle (seed %d): goroutine %d sentence %d: %v", seed, w, i, err)
						return
					}
					if derr := DiffStrings(fmt.Sprintf("batched goroutine %d sentence %d (seed %d)", w, i, seed), want[i], got); derr != nil {
						errs <- derr
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	if o.Counter("extract.batch.total").Value() == 0 {
		return fmt.Errorf("batch-live oracle (seed %d): no shared decode ran — the gather protocol never engaged", seed)
	}
	return nil
}

// joinWords renders a token sequence back to text for ExtractTagsCtx; the
// generator's utterances tokenize on single spaces, so this round-trips.
func joinWords(tokens []string) string {
	out := ""
	for i, t := range tokens {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}
