package check

import (
	"fmt"
	"strings"

	"saccs/internal/index"
	"saccs/internal/search"
)

// Property / metamorphic checks: semantic invariants from the paper that must
// hold on every corpus, checked on random seeded worlds.

// floatSlack absorbs the last-ulp rounding difference between two
// mathematically ordered float computations (the monotonicity properties
// compare quantities computed by different expressions, unlike the oracles'
// bit-identical replays).
const floatSlack = 1e-12

// idSet projects postings onto their entity-ID set.
func idSet(entries []index.Entry) map[string]float64 {
	out := make(map[string]float64, len(entries))
	for _, e := range entries {
		out[e.EntityID] = e.Degree
	}
	return out
}

// ThetaFilterMonotonic checks Algorithm 1's unknown-tag union: raising
// θ_filter never adds a result and never raises a surviving entity's score
// (every contributing term s·deg is positive, so dropping terms can only
// shrink the sum).
func ThetaFilterMonotonic(seed int64, trials int) error {
	g := NewGen(seed)
	ix := buildIndex(g.Tags(14), g.Entities(40), 0.55, 0)
	for i := 0; i < trials; i++ {
		tag := g.Tag()
		lo := 0.1 + 0.5*g.rng.Float64()
		hi := lo + (0.99-lo)*g.rng.Float64()
		loSet := idSet(ix.LookupSimilar(tag, lo))
		for _, e := range ix.LookupSimilar(tag, hi) {
			degLo, ok := loSet[e.EntityID]
			if !ok {
				return fmt.Errorf("θ_filter monotonicity (seed %d, trial %d): tag %q: raising θ %.3f→%.3f added entity %s",
					seed, i, tag, lo, hi, e.EntityID)
			}
			if e.Degree > degLo+floatSlack {
				return fmt.Errorf("θ_filter monotonicity (seed %d, trial %d): tag %q entity %s: score rose %.17g→%.17g when θ rose %.3f→%.3f",
					seed, i, tag, e.EntityID, degLo, e.Degree, lo, hi)
			}
		}
	}
	return nil
}

// ThetaIndexMonotonic checks Eq. 1's review-tag threshold: raising θ_index
// shrinks each entity's matched-mention set, so an entity absent from a tag's
// posting list at a low threshold can never appear at a higher one.
func ThetaIndexMonotonic(seed int64, trials int) error {
	g := NewGen(seed)
	tags := g.Tags(10)
	ents := g.Entities(36)
	for i := 0; i < trials; i++ {
		lo := 0.2 + 0.4*g.rng.Float64()
		hi := lo + (0.95-lo)*g.rng.Float64()
		ixLo := buildIndex(tags, ents, lo, 0)
		ixHi := buildIndex(tags, ents, hi, 0)
		for _, tag := range tags {
			loSet := idSet(ixLo.Lookup(tag))
			for _, e := range ixHi.Lookup(tag) {
				if _, ok := loSet[e.EntityID]; !ok {
					return fmt.Errorf("θ_index monotonicity (seed %d, trial %d): tag %q: raising θ %.3f→%.3f added posting %s",
						seed, i, tag, lo, hi, e.EntityID)
				}
			}
		}
	}
	return nil
}

// StrengthenMonotonic checks Eq. 1's degree-of-truth monotonicity: appending
// a review mention identical to the tag (similarity 1, no polarity conflict)
// to one entity never lowers that entity's degree for the tag — the mean
// similarity, the support ratio, and the mention-rate factor all move up or
// stay put.
func StrengthenMonotonic(seed int64, trials int) error {
	g := NewGen(seed)
	for i := 0; i < trials; i++ {
		tag := g.Tag()
		ents := g.Entities(24)
		pick := g.rng.Intn(len(ents))
		before := buildIndex([]string{tag}, ents, 0.55, 0)
		degBefore := idSet(before.Lookup(tag))[ents[pick].EntityID]

		strengthened := make([]index.EntityReviews, len(ents))
		copy(strengthened, ents)
		strengthened[pick].Tags = append(append([]string(nil), ents[pick].Tags...), tag)
		after := buildIndex([]string{tag}, strengthened, 0.55, 0)
		degAfter := idSet(after.Lookup(tag))[ents[pick].EntityID]

		if degAfter < degBefore-floatSlack {
			return fmt.Errorf("degree monotonicity (seed %d, trial %d): tag %q entity %s: adding an exact mention lowered the degree %.17g→%.17g",
				seed, i, tag, ents[pick].EntityID, degBefore, degAfter)
		}
	}
	return nil
}

// RankPermutationInvariant checks that Algorithm 1's ranking is a total,
// input-order-independent order: permuting the API result list and the query
// tag list changes neither the ranked IDs nor their scores, the output is a
// permutation of the API results, and no entity appears twice.
func RankPermutationInvariant(seed int64, trials int) error {
	g := NewGen(seed)
	tags := g.Tags(12)
	ents := g.Entities(40)
	ix := buildIndex(tags, ents, 0.55, 0)
	rk := &search.Ranker{Index: ix, ThetaFilter: 0.45, Agg: search.MeanAgg}
	ids := make([]string, len(ents))
	for i, e := range ents {
		ids[i] = e.EntityID
	}
	for i := 0; i < trials; i++ {
		api := g.subset(ids)
		qt := []string{g.pick(tags), g.pick(tags), g.Tag()}
		base := rk.Rank(api, qt)

		if len(base) != len(api) {
			return fmt.Errorf("rank totality (seed %d, trial %d): %d API results ranked into %d entries",
				seed, i, len(api), len(base))
		}
		seen := make(map[string]bool, len(base))
		for _, s := range base {
			if seen[s.EntityID] {
				return fmt.Errorf("rank totality (seed %d, trial %d): entity %s ranked twice", seed, i, s.EntityID)
			}
			seen[s.EntityID] = true
		}
		for _, id := range api {
			if !seen[id] {
				return fmt.Errorf("rank totality (seed %d, trial %d): API result %s missing from ranking", seed, i, id)
			}
		}

		perm := rk.Rank(g.shuffled(api), g.shuffled(qt))
		if err := DiffScored(fmt.Sprintf("rank permutation (seed %d, trial %d)", seed, i), base, perm); err != nil {
			return err
		}
	}
	return nil
}

// SlotWordBoundary checks the slot filler's word-boundary guarantee: every
// filled slot value occurs in the utterance as a whole word (split on
// non-alphanumeric runes), never as a substring of a longer word.
func SlotWordBoundary(seed int64, trials int) error {
	g := NewGen(seed)
	for i := 0; i < trials; i++ {
		utt := g.Utterance()
		in := search.ParseUtterance(utt)
		words := map[string]bool{}
		for _, w := range strings.FieldsFunc(strings.ToLower(utt), func(r rune) bool {
			return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
		}) {
			words[w] = true
		}
		for slot, val := range in.Slots {
			if !words[val] {
				return fmt.Errorf("slot word boundary (seed %d, trial %d): slot %s=%q filled but %q is not a whole word of %q",
					seed, i, slot, val, val, utt)
			}
		}
	}
	return nil
}
