package check

import (
	"fmt"
	"time"

	"saccs/internal/core"
	"saccs/internal/extcache"
	"saccs/internal/obs"
	"saccs/internal/search"
	"saccs/internal/yelp"
)

// TelemetryOracle checks that observability is inert: the same query stream
// must produce bit-identical responses with no observer attached and with the
// full telemetry stack on — span tracing into a ring, wide events, head
// sampling of every request, a 1ns slow threshold (every request takes the
// slow-log path), and SLO accounting. Telemetry that perturbs tag extraction,
// resolution, or ranking would be a correctness bug wearing an observability
// hat. The oracle also requires the instrumented pass to actually observe the
// workload: one wide event per query, each carrying a non-zero trace ID,
// stage timings, and a retained span tree.
func TelemetryOracle(seed int64, queries int) error {
	g := NewGen(seed)
	m := checkModel(seed + 4)
	ex := &core.Extractor{Tagger: m, Pairer: checkPairer(), Cache: extcache.New(256)}
	world := yelp.Generate(yelp.Config{
		Entities: 10, MeanReviews: 4, Seed: seed, City: "montreal", Cuisine: "italian",
	})
	svc := core.NewService(world, ex, nil, core.DefaultConfig())
	svc.BuildEntityTags(core.NeuralSource{E: ex})
	svc.IndexTags(svc.CanonicalTags()[:8])

	utterances := make([]string, queries)
	for i := range utterances {
		utterances[i] = g.Utterance()
	}

	type reply struct {
		tags, unknown []string
		results       []search.Scored
	}
	replay := func() []reply {
		out := make([]reply, len(utterances))
		for i, u := range utterances {
			r := svc.Query(u)
			out[i] = reply{tags: r.Tags, unknown: r.UnknownTags, results: r.Results}
		}
		return out
	}

	bare := replay()

	o := obs.NewObserver()
	ring := obs.NewRingSink(1024)
	o.SetTracer(obs.NewTracer(ring))
	o.SetTelemetry(obs.NewTelemetry(obs.TelemetryConfig{
		Metrics:       o.Metrics,
		EventRingSize: 2 * queries,
		HeadSampleN:   1,
		SlowThreshold: time.Nanosecond,
		SLOTarget:     time.Second,
	}))
	defer o.Telemetry().Close()
	svc.SetObserver(o)

	traced := replay()
	for i := range bare {
		label := func(what string) string {
			return fmt.Sprintf("telemetry-on vs bare %s, query %d (seed %d)", what, i, seed)
		}
		if err := DiffStrings(label("tags"), bare[i].tags, traced[i].tags); err != nil {
			return err
		}
		if err := DiffStrings(label("unknown tags"), bare[i].unknown, traced[i].unknown); err != nil {
			return err
		}
		if err := DiffScored(label("results"), bare[i].results, traced[i].results); err != nil {
			return err
		}
	}

	// The instrumented pass really was instrumented: one wide event per
	// query, each traced, timed, and (with a 1ns threshold) retained.
	evs := o.Telemetry().Events()
	if len(evs) != queries {
		return fmt.Errorf("telemetry oracle (seed %d): %d wide events for %d queries", seed, len(evs), queries)
	}
	for i, ev := range evs {
		switch {
		case ev.Kind != "query":
			return fmt.Errorf("telemetry oracle (seed %d): event %d kind %q, want \"query\"", seed, i, ev.Kind)
		case ev.Trace.IsZero():
			return fmt.Errorf("telemetry oracle (seed %d): event %d has a zero trace ID", seed, i)
		case ev.Duration <= 0:
			return fmt.Errorf("telemetry oracle (seed %d): event %d duration %v", seed, i, ev.Duration)
		case len(ev.Stage) == 0:
			return fmt.Errorf("telemetry oracle (seed %d): event %d has no stage timings", seed, i)
		case !ev.Retained:
			return fmt.Errorf("telemetry oracle (seed %d): event %d not retained under a 1ns slow threshold", seed, i)
		}
	}
	if spans := ring.Spans(); len(spans) == 0 {
		return fmt.Errorf("telemetry oracle (seed %d): no spans retained despite full sampling", seed)
	}
	return nil
}
