package check

import (
	"fmt"
	"math/rand"
	"strings"

	"saccs/internal/index"
	"saccs/internal/lexicon"
)

// Gen produces random Yelp-world corpora — subjective tags, per-entity review
// tag multisets, and user utterances — from a seeded PRNG. Two generators
// with the same seed produce identical streams, so any harness failure is
// replayable from its seed alone.
type Gen struct {
	rng    *rand.Rand
	domain *lexicon.Domain
}

// NewGen returns a generator over the restaurants domain.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), domain: lexicon.Restaurants()}
}

func (g *Gen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

// junkWord is a random lowercase letter string — an out-of-vocabulary surface
// form the similarity measure has never seen.
func (g *Gen) junkWord() string {
	n := 3 + g.rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + g.rng.Intn(26))
	}
	return string(b)
}

// Tag returns one random subjective tag: mostly in-domain opinion+aspect
// combinations (positive and negative, sometimes negated), with a small share
// of out-of-vocabulary junk so unknown-tag paths are exercised.
func (g *Gen) Tag() string {
	f := g.domain.Features[g.rng.Intn(len(g.domain.Features))]
	switch g.rng.Intn(10) {
	case 0:
		return f.Name
	case 1, 2:
		if len(f.NegOps) > 0 {
			return g.pick(f.NegOps) + " " + g.pick(f.AspectSyns)
		}
		return "not " + g.pick(f.PosOps) + " " + g.pick(f.AspectSyns)
	case 3:
		return "not " + g.pick(f.PosOps) + " " + g.pick(f.AspectSyns)
	case 4:
		return g.junkWord() + " " + g.junkWord()
	default:
		return g.pick(f.PosOps) + " " + g.pick(f.AspectSyns)
	}
}

// Tags returns n distinct random tags.
func (g *Gen) Tags(n int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		t := g.Tag()
		for seen[t] {
			// The tag space is large; a junk suffix guarantees progress on
			// the rare collision without skewing the distribution.
			t += " " + g.junkWord()
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// Entities returns n entities with random review counts and review-tag
// multisets, as the extraction stage would hand them to the indexer.
func (g *Gen) Entities(n int) []index.EntityReviews {
	out := make([]index.EntityReviews, n)
	for i := range out {
		nr := 1 + g.rng.Intn(30)
		nm := g.rng.Intn(3*nr + 1)
		er := index.EntityReviews{EntityID: fmt.Sprintf("e%03d", i), ReviewCount: nr}
		for t := 0; t < nm; t++ {
			er.Tags = append(er.Tags, g.Tag())
		}
		out[i] = er
	}
	return out
}

// slotTraps are words that contain a slot keyword as a proper substring; a
// word-boundary slot filler must never match them ("comparison" is not
// paris, "indiana-style" is not indian).
var slotTraps = []string{
	"comparison", "indiana-style", "italianate", "lyonnaise",
	"frenchify", "torontonian", "japanesque", "melbournian",
}

var genCuisines = []string{"italian", "french", "japanese", "mexican", "indian", "chinese"}

var genLocations = []string{"montreal", "melbourne", "lyon", "paris", "toronto", "sydney"}

// Utterance returns a random user utterance mixing objective slot keywords,
// subjective tags, filler, and substring traps.
func (g *Gen) Utterance() string {
	parts := []string{g.pick([]string{"i want", "find me", "looking for", "any"})}
	if g.rng.Intn(2) == 0 {
		parts = append(parts, g.pick(genCuisines))
	}
	parts = append(parts, g.pick([]string{"restaurant", "place", "spot"}))
	if g.rng.Intn(2) == 0 {
		parts = append(parts, "in", g.pick(genLocations))
	}
	parts = append(parts, "with", g.Tag())
	if g.rng.Intn(3) == 0 {
		parts = append(parts, g.pick(slotTraps))
	}
	if g.rng.Intn(3) == 0 {
		parts = append(parts, "and", g.Tag())
	}
	return strings.Join(parts, " ")
}

// shuffled returns a permuted copy of ss.
func (g *Gen) shuffled(ss []string) []string {
	out := append([]string(nil), ss...)
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// subset returns a random sorted subset of ids with at least one element
// (when ids is non-empty).
func (g *Gen) subset(ids []string) []string {
	var out []string
	for _, id := range ids {
		if g.rng.Intn(3) > 0 {
			out = append(out, id)
		}
	}
	if len(out) == 0 && len(ids) > 0 {
		out = append(out, ids[g.rng.Intn(len(ids))])
	}
	return out
}
