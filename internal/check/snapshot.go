package check

import (
	"fmt"
	"sync"

	"saccs/internal/search"
)

// SnapshotOracle proves the read-copy-update pinning contract
// differentially. A baseline workload is ranked through the index facade
// (each probe resolving against the generation current at probe time) while
// the index is quiescent; then the same workload must produce identical
// rankings through a pinned Snapshot — serially, from many goroutines while
// repeated Builds publish new generations underneath, and again after the
// last build has finished. The pinned view must be bit-stable through all of
// it even though Current() has visibly moved on, and the new generation must
// actually contain the built tags (the writer was not a no-op).
func SnapshotOracle(seed int64, goroutines, queries int) error {
	g := NewGen(seed)
	tags := g.Tags(12)
	ents := g.Entities(48)
	ix := buildIndex(tags, ents, 0.55, 0)

	ids := make([]string, len(ents))
	for i, e := range ents {
		ids[i] = e.EntityID
	}
	qs := make([]rankQuery, queries)
	for i := range qs {
		qt := []string{g.pick(tags)}
		if g.rng.Intn(2) == 0 {
			qt = append(qt, g.Tag()) // possibly unknown → similar-tag union
		}
		qs[i] = rankQuery{api: g.subset(ids), tags: qt}
	}

	// Baseline through the facade, pre-rebuild: probe-time resolution and
	// pinned resolution read the same single generation here, so any later
	// divergence is the pinning breaking, not the workload.
	facade := &search.Ranker{Index: ix, ThetaFilter: 0.45, Agg: search.MeanAgg}
	want := make([][]search.Scored, len(qs))
	for i, q := range qs {
		want[i] = facade.Rank(q.api, q.tags)
	}

	snap := ix.Current()
	lenBefore := snap.Len()
	pinned := &search.Ranker{Index: snap, ThetaFilter: 0.45, Agg: search.MeanAgg}
	replay := func(label string) error {
		errs := make(chan error, goroutines)
		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := 0; k < len(qs); k++ {
					i := (k + w) % len(qs)
					if err := DiffScored(fmt.Sprintf("%s query %d (goroutine %d, seed %d)", label, i, w, seed),
						want[i], pinned.Rank(qs[i].api, qs[i].tags)); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		return <-errs
	}

	// Serial sanity pass over the pinned snapshot.
	for i, q := range qs {
		if err := DiffScored(fmt.Sprintf("pinned-serial query %d (seed %d)", i, seed),
			want[i], pinned.Rank(q.api, q.tags)); err != nil {
			return err
		}
	}

	// Readers race a writer publishing new generations; every pinned read
	// must still match the pre-rebuild baseline.
	extra := g.Tags(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 1; round <= len(extra); round++ {
			ix.Build(extra[:round], ents)
		}
	}()
	err := replay("pinned-during-rebuild")
	<-done
	if err != nil {
		return err
	}

	// The writer really published: the current generation carries the new
	// tags, the pinned one still does not.
	cur := ix.Current()
	for _, t := range extra {
		if !cur.Has(t) {
			return fmt.Errorf("snapshot oracle (seed %d): current generation missing built tag %q", seed, t)
		}
	}
	if snap.Len() != lenBefore {
		return fmt.Errorf("snapshot oracle (seed %d): pinned snapshot grew from %d to %d tags",
			seed, lenBefore, snap.Len())
	}
	orig := make(map[string]bool, len(tags))
	for _, t := range tags {
		orig[t] = true
	}
	for _, t := range extra {
		if snap.Has(t) && !orig[t] {
			return fmt.Errorf("snapshot oracle (seed %d): pinned snapshot acquired built tag %q", seed, t)
		}
	}

	// And the pinned view is still bit-stable after the dust settles.
	return replay("pinned-after-rebuild")
}
