package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"saccs/internal/index"
	"saccs/internal/obs"
)

// Config wires an Ingester.
type Config struct {
	// FS is the filesystem seam (nil → OSFS). Only consulted when Dir is
	// set.
	FS FS
	// Dir is the durability directory: WAL segments, entity-state
	// checkpoints, and base/delta snapshot files live here. Empty disables
	// durability — appends still flow into the index with bounded staleness,
	// but nothing survives a restart.
	Dir string
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SegmentBytes rotates WAL segments (default 1 MiB).
	SegmentBytes int
	// PublishEvery bounds staleness by count: a publication runs once this
	// many reviews are pending (default 64; negative disables the count
	// trigger).
	PublishEvery int
	// PublishInterval bounds staleness by time: a background ticker
	// publishes any pending reviews at least this often. 0 picks the 250ms
	// default — even when the count trigger is disabled, so appends never
	// silently stall; negative disables the ticker (Flush and PublishEvery
	// still publish).
	PublishInterval time.Duration
	// CompactAfter folds the delta stack into a fresh base after this many
	// publications (default 8; negative disables auto-compaction).
	CompactAfter int
	// Obs receives ingest telemetry (nil disables).
	Obs *obs.Observer
}

// withDefaults resolves the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = OSFS{}
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 64
	}
	if c.PublishInterval == 0 {
		c.PublishInterval = 250 * time.Millisecond
	}
	if c.CompactAfter == 0 {
		c.CompactAfter = 8
	}
	return c
}

// ExtractFunc turns a batch of review texts into per-review tag lists:
// out[i] are the subjective tags of texts[i]. It must be deterministic and
// must match whatever extraction built the batch world the stream is
// compared against — the bit-identity guarantee is "same extraction, same
// review order ⇒ same index", not "any extraction".
type ExtractFunc func(texts []string) [][]string

// entityState is one entity's accumulated stream state: how many reviews
// have arrived and every tag extracted from them, in arrival order. This is
// exactly the index.EntityReviews a batch build would be handed, which is
// why a delta recomputed from it is bit-identical to the batch posting.
type entityState struct {
	reviews int
	tags    []string
}

// EntityMeta is the objective metadata of one streamed entity — the fields
// the dialog layer filters on. It rides the ingest stream as its own WAL
// record kind (and inside checkpoints), so a recovered entity comes back
// with its identity instead of as a bare-ID stub.
type EntityMeta struct {
	Name    string `json:"name,omitempty"`
	City    string `json:"city,omitempty"`
	Cuisine string `json:"cuisine,omitempty"`
}

// pendingReview is an acknowledged review whose tags have not been folded
// into the index yet (extraction runs per publication batch, not per
// append).
type pendingReview struct {
	seq    uint64
	entity string
	text   string
}

// Ingester is the streaming write path: Append acknowledges a review once
// the WAL has it durable, publication batches turn pending reviews into a
// mini-snapshot merged into the live index.Snapshot, and compaction folds
// the accumulated state into a checkpoint + base snapshot and truncates the
// WAL. Safe for concurrent use; readers querying the index are never
// blocked (they pin immutable snapshots).
type Ingester struct {
	cfg     Config
	extract ExtractFunc

	mu         sync.Mutex
	ix         *index.Index
	wal        *WAL // nil when cfg.Dir == ""
	tags       []string
	state      map[string]*entityState
	meta       map[string]EntityMeta // durable entity metadata (upsert semantics)
	order      []string              // entity first-seen order (deterministic iteration)
	pending    []pendingReview
	oldestWait time.Time // arrival of pending[0] (publish-lag numerator)
	appended   uint64    // count-only when wal == nil
	published  uint64    // watermark of the last publication
	deltaCount int       // publications since the last compaction
	closed     bool

	done chan struct{} // closes the staleness ticker
	tick *time.Ticker

	appendHist  *obs.Histogram
	publishHist *obs.Histogram
	lagHist     *obs.Histogram
	pendGauge   *obs.Gauge
	compactCtr  *obs.Counter
	recoverHist *obs.Histogram
}

// Open starts an ingester feeding ix. tags is the indexed tag list deltas
// are computed over (every publication covers all of them, so merged
// generations stay equivalent to batch builds); seed is the entity state the
// stream continues from — typically the batch-built world, or nil to start
// empty. When cfg.Dir is set, Open recovers first: the newest valid
// checkpoint restores entity state, any surviving base + delta stack is
// published as an interim generation, the WAL tail past the checkpoint is
// replayed through extract, and a full deterministic build is published — so
// no acknowledged review is ever lost.
func Open(cfg Config, ix *index.Index, tags []string, seed []index.EntityReviews, extract ExtractFunc) (*Ingester, error) {
	if extract == nil {
		return nil, fmt.Errorf("ingest: nil extract function")
	}
	cfg = cfg.withDefaults()
	ing := &Ingester{
		cfg:         cfg,
		extract:     extract,
		ix:          ix,
		tags:        append([]string(nil), tags...),
		state:       map[string]*entityState{},
		meta:        map[string]EntityMeta{},
		done:        make(chan struct{}),
		appendHist:  cfg.Obs.Histogram("ingest.append"),
		publishHist: cfg.Obs.Histogram("ingest.publish"),
		lagHist:     cfg.Obs.Histogram("ingest.publish.lag"),
		pendGauge:   cfg.Obs.Gauge("ingest.pending"),
		compactCtr:  cfg.Obs.Counter("ingest.compactions.total"),
		recoverHist: cfg.Obs.Histogram("ingest.recover"),
	}
	for _, er := range seed {
		ing.noteEntityLocked(er.EntityID)
		st := ing.state[er.EntityID]
		st.reviews = er.ReviewCount
		st.tags = append([]string(nil), er.Tags...)
	}
	if cfg.Dir != "" {
		if err := ing.recover(); err != nil {
			return nil, err
		}
	} else if !ing.vocabularyPublished() {
		// The caller handed us a virgin index. Without this build, the empty
		// zero-tag generation would stay published until the first delta
		// round, and a concurrent reader could pin a snapshot no batch build
		// of any append prefix produces. Publish the seeded world — with the
		// vocabulary registered — before Open returns, matching the
		// postcondition the recovery path already guarantees. (An index
		// already built over the seed, the facade's case, is left untouched.)
		if err := ing.rebuildLocked(context.Background()); err != nil {
			return nil, err
		}
	}
	if cfg.PublishInterval > 0 {
		ing.tick = time.NewTicker(cfg.PublishInterval)
		go ing.tickLoop()
	}
	return ing, nil
}

func (g *Ingester) tickLoop() {
	for {
		select {
		case <-g.done:
			return
		case <-g.tick.C:
			g.mu.Lock()
			if !g.closed && len(g.pending) > 0 {
				_ = g.publishLocked(context.Background())
			}
			g.mu.Unlock()
		}
	}
}

// noteEntityLocked registers an entity on first sight, preserving arrival
// order.
func (g *Ingester) noteEntityLocked(id string) {
	if _, ok := g.state[id]; !ok {
		g.state[id] = &entityState{}
		g.order = append(g.order, id)
	}
}

// Append acknowledges one review. With a WAL the call returns only after
// the record is durable under the configured fsync policy (FsyncAlways: on
// stable storage before the ack); without one it is a purely in-memory
// enqueue. The review's tags become queryable within the staleness bound —
// after at most PublishEvery further appends or PublishInterval elapsed
// time, whichever comes first.
func (g *Ingester) Append(ctx context.Context, entityID, review string) (uint64, error) {
	if entityID == "" {
		return 0, fmt.Errorf("ingest: empty entity ID")
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	t0 := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return 0, fmt.Errorf("ingest: ingester is closed")
	}
	var seq uint64
	if g.wal != nil {
		var err error
		seq, err = g.wal.Append(entityID, review)
		if err != nil {
			return 0, err
		}
	} else {
		g.appended++
		seq = g.appended
	}
	g.noteEntityLocked(entityID)
	if len(g.pending) == 0 {
		g.oldestWait = t0
	}
	g.pending = append(g.pending, pendingReview{seq: seq, entity: entityID, text: review})
	g.pendGauge.Set(float64(len(g.pending)))
	if g.cfg.PublishEvery > 0 && len(g.pending) >= g.cfg.PublishEvery {
		if err := g.publishLocked(ctx); err != nil {
			// The review is durable and will surface on the next
			// publication (or recovery); the ack stands.
			g.cfg.Obs.Counter("ingest.publish.errors.total").Inc()
		}
	}
	g.appendHist.Observe(time.Since(t0))
	return seq, nil
}

// PutMeta durably upserts one entity's metadata: with a WAL the call
// returns only after the metadata record is fsynced (under FsyncAlways),
// and checkpoints carry it from then on, so a recovered entity keeps its
// identity. An upsert identical to the stored metadata is acknowledged
// without touching the log, which makes callers free to PutMeta on every
// append. Returns the record's sequence number (0 for the dedup no-op).
func (g *Ingester) PutMeta(ctx context.Context, entityID string, m EntityMeta) (uint64, error) {
	if entityID == "" {
		return 0, fmt.Errorf("ingest: empty entity ID")
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return 0, fmt.Errorf("ingest: ingester is closed")
	}
	if cur, ok := g.meta[entityID]; ok && cur == m {
		return 0, nil
	}
	var seq uint64
	if g.wal != nil {
		body, err := json.Marshal(m)
		if err != nil {
			return 0, err
		}
		seq, err = g.wal.AppendMeta(entityID, string(body))
		if err != nil {
			return 0, err
		}
	} else {
		g.appended++
		seq = g.appended
	}
	g.noteEntityLocked(entityID)
	g.meta[entityID] = m
	return seq, nil
}

// SeedMeta upserts entity metadata in memory only — the Open-time seeding
// hook for a world whose metadata is already durable elsewhere (or will be
// at the next checkpoint, which always carries the full metadata map).
func (g *Ingester) SeedMeta(meta map[string]EntityMeta) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for id, m := range meta {
		if id == "" {
			continue
		}
		g.meta[id] = m
	}
	g.noteMetaOnlyLocked()
}

// noteMetaOnlyLocked registers entities that have metadata but no stream
// state yet, in sorted order so checkpoints stay deterministic.
func (g *Ingester) noteMetaOnlyLocked() {
	var extra []string
	for id := range g.meta {
		if _, ok := g.state[id]; !ok {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	for _, id := range extra {
		g.noteEntityLocked(id)
	}
}

// Meta returns a copy of the accumulated entity metadata.
func (g *Ingester) Meta() map[string]EntityMeta {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]EntityMeta, len(g.meta))
	for id, m := range g.meta {
		out[id] = m
	}
	return out
}

// Flush publishes every pending review and, with a WAL under FsyncBatch,
// syncs it first. After Flush returns the published snapshot reflects every
// acknowledged append — the quiescence point the differential oracle
// compares at.
func (g *Ingester) Flush(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("ingest: ingester is closed")
	}
	if g.wal != nil {
		if err := g.wal.Sync(); err != nil {
			return err
		}
	}
	if len(g.pending) == 0 {
		return nil
	}
	return g.publishLocked(ctx)
}

// publishLocked is one delta round: batch-extract the pending reviews, fold
// them into the per-entity state, recompute the dirty entities' postings
// over the full tag list, merge-publish the next generation, and (with a
// Dir) write the mini-snapshot file. Caller holds g.mu.
func (g *Ingester) publishLocked(ctx context.Context) error {
	t0 := time.Now()
	batch := g.pending
	texts := make([]string, len(batch))
	for i, p := range batch {
		texts[i] = p.text
	}
	tagLists := g.extract(texts)
	if len(tagLists) != len(batch) {
		return fmt.Errorf("ingest: extractor returned %d tag lists for %d reviews", len(tagLists), len(batch))
	}
	// Oldest pending review first: state accumulation must follow arrival
	// order so the degree computation sees the same tag sequence a batch
	// build would. The fold runs on staged copies — g.state commits only
	// after MergeDelta succeeds, so a failed or cancelled merge leaves the
	// batch fully pending and the retry re-folds from scratch instead of
	// double-counting reviews and duplicating tags.
	staged := map[string]*entityState{}
	for i, p := range batch {
		st := staged[p.entity]
		if st == nil {
			cur := g.state[p.entity]
			st = &entityState{reviews: cur.reviews, tags: append([]string(nil), cur.tags...)}
			staged[p.entity] = st
		}
		st.reviews++
		st.tags = append(st.tags, tagLists[i]...)
	}
	dirty := make([]index.EntityReviews, 0, len(staged))
	for _, id := range g.order {
		st, ok := staged[id]
		if !ok {
			continue
		}
		dirty = append(dirty, index.EntityReviews{EntityID: id, ReviewCount: st.reviews, Tags: st.tags})
	}
	d, err := g.ix.MergeDelta(ctx, g.tags, dirty)
	if err != nil {
		return err
	}
	for id, st := range staged {
		g.state[id] = st
	}
	watermark := batch[len(batch)-1].seq
	d.Seq = watermark
	g.pending = g.pending[len(batch):]
	if len(g.pending) == 0 {
		g.pending = nil
	}
	g.published = watermark
	g.pendGauge.Set(float64(len(g.pending)))
	g.publishHist.Observe(time.Since(t0))
	// Publish lag: how long the oldest review in the batch waited between
	// acknowledgment and becoming queryable — the staleness the
	// PublishEvery/PublishInterval knobs bound.
	if !g.oldestWait.IsZero() {
		g.lagHist.Observe(time.Since(g.oldestWait))
		g.oldestWait = time.Time{}
	}
	if g.cfg.Dir != "" {
		// Delta files are derived data (the WAL is the durability source),
		// so a write failure only costs the recovery fast path.
		g.writeDeltaFile(d)
	}
	g.deltaCount++
	if g.cfg.CompactAfter > 0 && g.deltaCount >= g.cfg.CompactAfter {
		if err := g.compactLocked(); err != nil {
			g.cfg.Obs.Counter("ingest.compact.errors.total").Inc()
		}
	}
	return nil
}

func deltaName(seq uint64) string { return fmt.Sprintf("delta-%016x.snap", seq) }
func baseName(seq uint64) string  { return fmt.Sprintf("base-%016x.snap", seq) }
func ckptName(seq uint64) string  { return fmt.Sprintf("state-%016x.ckpt", seq) }

func (g *Ingester) writeDeltaFile(d *index.Delta) {
	f, err := g.cfg.FS.Create(join(g.cfg.Dir, deltaName(d.Seq)))
	if err != nil {
		return
	}
	_ = index.WriteDelta(f, 0, d)
	_ = f.Close()
}

// Compact folds the ingested state into durable artifacts: an entity-state
// checkpoint and a base snapshot at the published watermark, after which the
// delta files and every WAL segment at or below the watermark are removed.
// Pending (unpublished) reviews stay in the WAL. Compaction is incremental
// in effect only — a crash anywhere during it recovers, because the
// checkpoint is made durable (tmp + sync + rename) before anything is
// deleted.
func (g *Ingester) Compact() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("ingest: ingester is closed")
	}
	return g.compactLocked()
}

func (g *Ingester) compactLocked() error {
	g.deltaCount = 0
	if g.cfg.Dir == "" {
		return nil
	}
	watermark := g.published
	if err := g.writeCheckpointLocked(watermark); err != nil {
		return err
	}
	// Base snapshot: the published generation at the watermark (pending
	// reviews are not in it by construction — they have not been published).
	if f, err := g.cfg.FS.Create(join(g.cfg.Dir, baseName(watermark))); err == nil {
		_ = g.ix.Current().WriteBase(f, watermark)
		_ = f.Sync()
		_ = f.Close()
	}
	// Now that the checkpoint is durable, drop superseded artifacts:
	// older checkpoints/bases, folded deltas, covered WAL segments.
	if names, err := g.cfg.FS.ReadDir(g.cfg.Dir); err == nil {
		for _, n := range names {
			var seq uint64
			switch {
			case parseSeq(n, "state-", ".ckpt", &seq) && seq < watermark,
				parseSeq(n, "base-", ".snap", &seq) && seq < watermark,
				parseSeq(n, "delta-", ".snap", &seq) && seq <= watermark:
				if err := g.cfg.FS.Remove(join(g.cfg.Dir, n)); err != nil {
					return err
				}
			}
		}
	}
	// One fence covers the base snapshot's entry and the removals above;
	// correctness never depends on it (base is derived data, resurrected
	// removals are skipped by recovery) but the recovery fast path does.
	if err := g.cfg.FS.SyncDir(g.cfg.Dir); err != nil {
		return err
	}
	if g.wal != nil {
		if err := g.wal.TruncateTo(watermark); err != nil {
			return err
		}
	}
	g.compactCtr.Inc()
	return nil
}

// checkpointFile is the durable entity-state format: everything needed to
// continue the stream (and rebuild the index) without the reviews
// themselves.
type checkpointFile struct {
	Version  int              `json:"version"`
	Seq      uint64           `json:"seq"`
	Tags     []string         `json:"tags"`
	Entities []checkpointment `json:"entities"`
}

type checkpointment struct {
	ID      string   `json:"id"`
	Reviews int      `json:"reviews"`
	Tags    []string `json:"tags"`
	// Meta is the entity's durable metadata, if any — an additive extension
	// (older checkpoints simply lack it; older readers ignore it).
	Meta *EntityMeta `json:"meta,omitempty"`
}

const checkpointVersion = 1

func (g *Ingester) writeCheckpointLocked(watermark uint64) error {
	ck := checkpointFile{Version: checkpointVersion, Seq: watermark, Tags: g.tags}
	for _, id := range g.order {
		st := g.state[id]
		ce := checkpointment{ID: id, Reviews: st.reviews, Tags: st.tags}
		if m, ok := g.meta[id]; ok {
			mc := m
			ce.Meta = &mc
		}
		ck.Entities = append(ck.Entities, ce)
	}
	tmp := join(g.cfg.Dir, ckptName(watermark)+".tmp")
	f, err := g.cfg.FS.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(ck); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := g.cfg.FS.Rename(tmp, join(g.cfg.Dir, ckptName(watermark))); err != nil {
		return err
	}
	// Fence the rename: until the directory entry is durable, a crash can
	// lose the checkpoint file entirely, and compaction must not delete
	// the WAL segments it supersedes before that.
	return g.cfg.FS.SyncDir(g.cfg.Dir)
}

// parseSeq extracts the hex watermark from names like prefix-XXXXXXXX.suffix.
func parseSeq(name, prefix, suffix string, out *uint64) bool {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	if _, err := fmt.Sscanf(hex, "%x", &v); err != nil || len(hex) != 16 {
		return false
	}
	*out = v
	return true
}

// recover restores state from cfg.Dir: newest valid checkpoint → entity
// state and tag list; surviving base + delta stack → interim published
// generation (best-effort fast path); WAL records past the checkpoint →
// re-extracted and folded in; then one full deterministic build is
// published. Acked-but-unpublished reviews thus reappear exactly as if they
// had streamed in normally.
func (g *Ingester) recover() error {
	t0 := time.Now()
	fsys := g.cfg.FS
	dir := g.cfg.Dir
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("ingest: creating dir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ingest: scanning dir: %w", err)
	}

	// Newest checkpoint that parses wins; torn or unparseable ones (a crash
	// during the pre-rename sync) fall back to their predecessor.
	var ckptSeqs []uint64
	var baseSeqs, deltaSeqs []uint64
	for _, n := range names {
		var seq uint64
		switch {
		case parseSeq(n, "state-", ".ckpt", &seq):
			ckptSeqs = append(ckptSeqs, seq)
		case parseSeq(n, "base-", ".snap", &seq):
			baseSeqs = append(baseSeqs, seq)
		case parseSeq(n, "delta-", ".snap", &seq):
			deltaSeqs = append(deltaSeqs, seq)
		}
	}
	sortDesc(ckptSeqs)
	var ckptSeq uint64
	for _, seq := range ckptSeqs {
		data, rerr := fsys.ReadFile(join(dir, ckptName(seq)))
		if rerr != nil {
			continue
		}
		var ck checkpointFile
		if json.Unmarshal(data, &ck) != nil || ck.Version != checkpointVersion || ck.Seq != seq {
			continue
		}
		g.state = map[string]*entityState{}
		g.order = nil
		for _, e := range ck.Entities {
			if e.ID == "" {
				continue
			}
			g.noteEntityLocked(e.ID)
			st := g.state[e.ID]
			st.reviews = e.Reviews
			st.tags = e.Tags
			if e.Meta != nil {
				g.meta[e.ID] = *e.Meta
			}
		}
		// The checkpoint's tag list is the pre-crash index vocabulary; keep
		// its order (so the rebuilt index is byte-identical on Save) and
		// append any caller-supplied tags it does not know about yet.
		if len(ck.Tags) > 0 {
			merged := append([]string(nil), ck.Tags...)
			seen := make(map[string]struct{}, len(merged))
			for _, tg := range merged {
				seen[tg] = struct{}{}
			}
			for _, tg := range g.tags {
				if _, ok := seen[tg]; !ok {
					merged = append(merged, tg)
				}
			}
			g.tags = merged
		}
		ckptSeq = seq
		break
	}

	// Interim fast path: publish the newest base + its delta stack so
	// queries see a near-current index while the tail replays. Failures are
	// ignored — these files are derived data.
	g.loadStackBestEffort(baseSeqs, deltaSeqs)

	// WAL replay: every record past the checkpoint re-enters the pipeline.
	wal, recs, err := OpenWAL(fsys, dir, WALOptions{
		SegmentBytes: g.cfg.SegmentBytes,
		Fsync:        g.cfg.Fsync,
		Obs:          g.cfg.Obs,
	})
	if err != nil {
		return err
	}
	g.wal = wal
	wal.EnsureNext(ckptSeq + 1)
	var tail []Record
	for _, r := range recs {
		if r.Seq > ckptSeq {
			tail = append(tail, r)
		}
	}
	g.published = ckptSeq
	g.appended = ckptSeq
	if len(tail) > 0 {
		// Batch-extract the review records (metadata records carry no text),
		// then fold the tail in sequence order so review state accumulates in
		// arrival order and metadata upserts apply last-writer-wins.
		var texts []string
		for _, r := range tail {
			if r.Kind == KindReview {
				texts = append(texts, r.Body)
			}
		}
		tagLists := g.extract(texts)
		if len(tagLists) != len(texts) {
			return fmt.Errorf("ingest: extractor returned %d tag lists for %d replayed reviews", len(tagLists), len(texts))
		}
		rv := 0
		for _, r := range tail {
			g.noteEntityLocked(r.Entity)
			switch r.Kind {
			case KindReview:
				st := g.state[r.Entity]
				st.reviews++
				st.tags = append(st.tags, tagLists[rv]...)
				rv++
			case KindMeta:
				var m EntityMeta
				if err := json.Unmarshal([]byte(r.Body), &m); err != nil {
					return fmt.Errorf("ingest: decoding metadata record %d: %w", r.Seq, err)
				}
				g.meta[r.Entity] = m
			}
		}
		g.published = tail[len(tail)-1].Seq
		g.appended = g.published
	}

	// Final authoritative publish: a full build over the recovered state,
	// byte-identical to the pre-crash quiescent index.
	if err := g.rebuildLocked(context.Background()); err != nil {
		return err
	}
	g.recoverHist.Observe(time.Since(t0))
	g.cfg.Obs.Counter("ingest.recoveries.total").Inc()
	g.cfg.Obs.Gauge("ingest.recover.replayed").Set(float64(len(tail)))
	return nil
}

// rebuildLocked publishes a full build of the accumulated stream state over
// the current vocabulary — the batch build the streamed world must stay
// equivalent to. Caller holds g.mu (or is still constructing the ingester).
func (g *Ingester) rebuildLocked(ctx context.Context) error {
	all := make([]index.EntityReviews, 0, len(g.order))
	for _, id := range g.order {
		st := g.state[id]
		all = append(all, index.EntityReviews{EntityID: id, ReviewCount: st.reviews, Tags: st.tags})
	}
	return g.ix.BuildCtx(ctx, g.tags, all)
}

// vocabularyPublished reports whether the index's current generation already
// registers every streamed tag — true when the caller handed Open an index
// built over the seed world, false for a virgin index.
func (g *Ingester) vocabularyPublished() bool {
	snap := g.ix.Current()
	if snap.Len() < len(g.tags) {
		return false
	}
	have := make(map[string]struct{}, snap.Len())
	snap.EachTag(func(t string) bool {
		have[t] = struct{}{}
		return true
	})
	for _, t := range g.tags {
		if _, ok := have[t]; !ok {
			return false
		}
	}
	return true
}

// loadStackBestEffort publishes the newest surviving base + delta stack as
// an interim generation. Any parse or framing failure abandons the fast
// path silently — the WAL replay that follows rebuilds everything anyway.
func (g *Ingester) loadStackBestEffort(baseSeqs, deltaSeqs []uint64) {
	if len(baseSeqs) == 0 {
		return
	}
	sortDesc(baseSeqs)
	base := baseSeqs[0]
	data, err := g.cfg.FS.ReadFile(join(g.cfg.Dir, baseName(base)))
	if err != nil {
		return
	}
	sort.Slice(deltaSeqs, func(i, j int) bool { return deltaSeqs[i] < deltaSeqs[j] })
	var deltas []io.Reader
	for _, seq := range deltaSeqs {
		if seq <= base {
			continue
		}
		d, derr := g.cfg.FS.ReadFile(join(g.cfg.Dir, deltaName(seq)))
		if derr != nil {
			return
		}
		deltas = append(deltas, bytes.NewReader(d))
	}
	_, _ = g.ix.LoadStack(bytes.NewReader(data), deltas...)
}

func sortDesc(seqs []uint64) {
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
}

// Published returns the watermark of the last published generation.
func (g *Ingester) Published() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.published
}

// Pending returns how many acknowledged reviews await publication.
func (g *Ingester) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// State returns a copy of the accumulated entity state in arrival order —
// the exact input a batch build of the streamed world would receive.
func (g *Ingester) State() []index.EntityReviews {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]index.EntityReviews, 0, len(g.order))
	for _, id := range g.order {
		st := g.state[id]
		out = append(out, index.EntityReviews{
			EntityID:    id,
			ReviewCount: st.reviews,
			Tags:        append([]string(nil), st.tags...),
		})
	}
	return out
}

// Tags returns the indexed tag list deltas are computed over.
func (g *Ingester) Tags() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.tags...)
}

// AddTags extends the indexed tag list (the Fig. 1 adaptive loop feeding
// reindexed history tags into the stream). Future publications cover the
// new tags; with a Dir the widened list becomes durable at the next
// compaction, which is triggered here so a crash cannot forget it.
func (g *Ingester) AddTags(tags []string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("ingest: ingester is closed")
	}
	have := map[string]bool{}
	for _, t := range g.tags {
		have[t] = true
	}
	added := false
	for _, t := range tags {
		if t != "" && !have[t] {
			g.tags = append(g.tags, t)
			have[t] = true
			added = true
		}
	}
	if added && g.cfg.Dir != "" {
		return g.compactLocked()
	}
	return nil
}

// Rebase resets the stream to a batch-built world: the given state (and
// entity metadata, nil for none) replaces everything accumulated so far, the
// WAL is truncated behind a fresh checkpoint, and future appends continue
// from here. The facade calls this when a full IndexEntities supersedes the
// streamed state.
func (g *Ingester) Rebase(ix *index.Index, tags []string, seed []index.EntityReviews, meta map[string]EntityMeta) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("ingest: ingester is closed")
	}
	g.ix = ix
	g.tags = append([]string(nil), tags...)
	g.state = map[string]*entityState{}
	g.order = nil
	g.meta = make(map[string]EntityMeta, len(meta))
	for id, m := range meta {
		if id != "" {
			g.meta[id] = m
		}
	}
	for _, er := range seed {
		g.noteEntityLocked(er.EntityID)
		st := g.state[er.EntityID]
		st.reviews = er.ReviewCount
		st.tags = append([]string(nil), er.Tags...)
	}
	g.noteMetaOnlyLocked()
	g.pending = nil
	g.pendGauge.Set(float64(0))
	if g.wal != nil {
		g.published = g.wal.NextSeq() - 1
		g.appended = g.published
	} else {
		g.published = g.appended
	}
	g.deltaCount = 0
	if g.cfg.Dir != "" {
		return g.compactLocked()
	}
	return nil
}

// Close flushes pending reviews, stops the staleness ticker, and seals the
// WAL. The ingester is unusable afterwards.
func (g *Ingester) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	if g.tick != nil {
		g.tick.Stop()
	}
	close(g.done)
	var err error
	if len(g.pending) > 0 {
		err = g.publishLocked(context.Background())
	}
	if g.wal != nil {
		if cerr := g.wal.Close(); err == nil {
			err = cerr
		}
	}
	g.mu.Unlock()
	return err
}
