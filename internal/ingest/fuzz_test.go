package ingest

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzSegment assembles a segment image from records for seeding: the 16-byte
// header followed by properly framed records. An entity prefixed "meta:" is
// framed as a metadata record (prefix stripped).
func fuzzSegment(firstSeq uint64, recs ...[2]string) []byte {
	buf := make([]byte, walHeaderSize)
	copy(buf, walMagic)
	binary.LittleEndian.PutUint32(buf[4:], walVersion)
	binary.LittleEndian.PutUint64(buf[8:], firstSeq)
	for i, r := range recs {
		kind, entity := KindReview, r[0]
		if len(entity) > 5 && entity[:5] == "meta:" {
			kind, entity = KindMeta, entity[5:]
		}
		b, err := encodeRecord(firstSeq+uint64(i), kind, entity, r[1])
		if err != nil {
			panic(err)
		}
		buf = append(buf, b...)
	}
	return buf
}

// FuzzWALDecode throws arbitrary bytes at the two WAL decoders. Neither may
// panic or over-read, every accepted record must survive an encode round-trip
// bit-exactly, and replay must stop at a self-consistent boundary: the valid
// prefix it reports re-encodes to exactly the bytes it consumed.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(fuzzSegment(1))
	f.Add(fuzzSegment(1, [2]string{"e1", "good food"}, [2]string{"e2", "nice staff | cozy place"}))
	f.Add(fuzzSegment(1<<40, [2]string{"entity-with-longer-id", ""}))
	// Metadata records interleaved with reviews.
	f.Add(fuzzSegment(3,
		[2]string{"meta:e1", `{"name":"Chez Nous","city":"lyon"}`},
		[2]string{"e1", "lovely evening"},
		[2]string{"meta:e2", `{}`}))
	// Torn tail: a record cut off mid-payload.
	whole := fuzzSegment(7, [2]string{"e1", "review one"}, [2]string{"e1", "review two"})
	f.Add(whole[:len(whole)-5])
	// Flipped payload byte: CRC must catch it.
	bad := append([]byte(nil), whole...)
	bad[len(bad)-3] ^= 0xff
	f.Add(bad)
	// Hostile length prefix: huge payloadLen must be rejected before any
	// allocation or slice.
	huge := fuzzSegment(1)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-record decoder.
		rec, n, err := decodeRecord(data)
		if err == nil {
			if n < recHeaderSize+minPayload || n > len(data) {
				t.Fatalf("decodeRecord consumed %d of %d bytes", n, len(data))
			}
			re, eerr := encodeRecord(rec.Seq, rec.Kind, rec.Entity, rec.Body)
			if eerr != nil {
				t.Fatalf("re-encoding accepted record: %v", eerr)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("decode/encode round-trip drifted: %x != %x", re, data[:n])
			}
		}

		// Whole-segment replay.
		first, recs, valid, tailErr := replaySegment(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("replaySegment valid offset %d of %d bytes", valid, len(data))
		}
		if tailErr == nil && valid != len(data) {
			t.Fatalf("clean replay stopped at %d of %d bytes", valid, len(data))
		}
		for i, r := range recs {
			if r.Seq != first+uint64(i) {
				t.Fatalf("record %d has seq %d, want %d", i, r.Seq, first+uint64(i))
			}
		}
		if valid >= walHeaderSize {
			re := append([]byte(nil), data[:walHeaderSize]...)
			for _, r := range recs {
				b, eerr := encodeRecord(r.Seq, r.Kind, r.Entity, r.Body)
				if eerr != nil {
					t.Fatalf("re-encoding replayed record: %v", eerr)
				}
				re = append(re, b...)
			}
			if !bytes.Equal(re, data[:valid]) {
				t.Fatalf("replay prefix does not re-encode to itself")
			}
		} else if len(recs) != 0 {
			t.Fatalf("replay returned %d records from a headerless image", len(recs))
		}

		// CRC sanity: an accepted record's stored checksum must really be
		// the IEEE CRC of the payload alone (guards against accidentally
		// checksumming the header too).
		if err == nil {
			want := crc32.Checksum(data[recHeaderSize:n], crcTable)
			if got := binary.LittleEndian.Uint32(data[4:]); got != want {
				t.Fatalf("accepted record with CRC %08x, payload sums to %08x", got, want)
			}
		}
	})
}
