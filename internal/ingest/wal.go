package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"time"

	"saccs/internal/obs"
)

// The WAL wire format. Each segment file is
//
//	magic "SWAL" | u32 version | u64 firstSeq        (16-byte header)
//	record*
//
// and each record is
//
//	u32 payloadLen | u32 crc32(payload) | payload
//	payload = u64 seq | u32 kind·entityLen | entity | body
//
// (all little-endian). The top bit of the entity-length word is the record
// kind: clear for a review record (body = review text, the only kind version
// 1 ever wrote) and set for an entity-metadata record (body = JSON-encoded
// EntityMeta). Logs written before metadata existed decode unchanged, and a
// pre-metadata decoder rejects a metadata record as corrupt rather than
// misreading it — the flagged length exceeds any real entity ID. Sequence
// numbers are contiguous within a segment (both kinds consume one) and start
// at the header's firstSeq, so replay can detect a missing or reordered
// record without trusting record contents. The CRC covers the whole payload:
// a torn or bit-flipped record fails the checksum and replay stops at the
// last valid boundary.
const (
	walMagic      = "SWAL"
	walVersion    = 1
	walHeaderSize = 16
	recHeaderSize = 8
	// minPayload is a record with an empty body and a one-byte entity ID.
	minPayload = 13
	// maxRecordSize caps one payload: a decoder must reject anything larger
	// before allocating, so adversarial length prefixes cannot over-allocate
	// (FuzzWALDecode enforces this).
	maxRecordSize = 1 << 20
	// metaFlag marks a metadata record in the entity-length word. It is far
	// above maxRecordSize, so no review record's entity length can collide
	// with it.
	metaFlag = uint32(1) << 31
)

// RecordKind distinguishes what a WAL record carries.
type RecordKind uint8

const (
	// KindReview is one streamed review: body is the review text.
	KindReview RecordKind = iota
	// KindMeta is an entity-metadata upsert: body is a JSON EntityMeta.
	KindMeta
)

// FsyncPolicy is the WAL durability knob.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: Append returning nil
	// means the review is durable. The default, and the only policy under
	// which the "no acknowledged review is ever lost" contract holds per
	// append.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch defers syncing to explicit Sync calls (the ingester syncs
	// at every publication): a crash may lose the unsynced suffix, but never
	// tears a record mid-way.
	FsyncBatch
	// FsyncNever never syncs (benchmarks and tests only).
	FsyncNever
)

// Record is one acknowledged entry in the log: a review (KindReview, Body
// holds the review text) or an entity-metadata upsert (KindMeta, Body holds
// the JSON-encoded EntityMeta).
type Record struct {
	Seq    uint64
	Kind   RecordKind
	Entity string
	Body   string
}

// errTruncated marks a record (or segment header) that stops short: the
// torn-tail case replay repairs, as opposed to corruption it must reject.
var errTruncated = errors.New("ingest: truncated record")

// ErrCorrupt wraps unrecoverable log damage: a checksum or framing failure
// that is not a final-segment torn tail.
var ErrCorrupt = errors.New("ingest: corrupt WAL")

var crcTable = crc32.MakeTable(crc32.IEEE)

// encodeRecord frames one record for the log.
func encodeRecord(seq uint64, kind RecordKind, entity, body string) ([]byte, error) {
	if entity == "" {
		return nil, fmt.Errorf("ingest: empty entity ID")
	}
	if kind > KindMeta {
		return nil, fmt.Errorf("ingest: unknown record kind %d", kind)
	}
	payload := 12 + len(entity) + len(body)
	if payload > maxRecordSize {
		return nil, fmt.Errorf("ingest: record payload %d exceeds %d bytes", payload, maxRecordSize)
	}
	lenWord := uint32(len(entity))
	if kind == KindMeta {
		lenWord |= metaFlag
	}
	buf := make([]byte, recHeaderSize+payload)
	p := buf[recHeaderSize:]
	binary.LittleEndian.PutUint64(p[0:], seq)
	binary.LittleEndian.PutUint32(p[8:], lenWord)
	copy(p[12:], entity)
	copy(p[12+len(entity):], body)
	binary.LittleEndian.PutUint32(buf[0:], uint32(payload))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(p, crcTable))
	return buf, nil
}

// decodeRecord decodes the record at the head of b, returning it and the
// bytes consumed. errTruncated means b ends before the record does (a torn
// tail); any other error is corruption — bad length, failed CRC, or framing
// that disagrees with itself. The length prefix is validated against
// maxRecordSize before anything is sliced, so a hostile prefix cannot force
// an allocation.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, errTruncated
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:]))
	if payloadLen < minPayload || payloadLen > maxRecordSize {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, payloadLen)
	}
	if len(b) < recHeaderSize+payloadLen {
		return Record{}, 0, errTruncated
	}
	p := b[recHeaderSize : recHeaderSize+payloadLen]
	if crc := crc32.Checksum(p, crcTable); crc != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	lenWord := binary.LittleEndian.Uint32(p[8:])
	kind := KindReview
	if lenWord&metaFlag != 0 {
		kind = KindMeta
	}
	entityLen := int(lenWord &^ metaFlag)
	if entityLen < 1 || 12+entityLen > payloadLen {
		return Record{}, 0, fmt.Errorf("%w: entity length %d in %d-byte payload", ErrCorrupt, entityLen, payloadLen)
	}
	rec := Record{
		Seq:    binary.LittleEndian.Uint64(p[0:]),
		Kind:   kind,
		Entity: string(p[12 : 12+entityLen]),
		Body:   string(p[12+entityLen:]),
	}
	return rec, recHeaderSize + payloadLen, nil
}

// replaySegment decodes one segment image. It returns the segment's header
// firstSeq, every valid record, and the byte offset of the last valid record
// boundary. tailErr reports how the segment ends: nil for a clean end,
// errTruncated for a torn tail (short header counts), or an ErrCorrupt
// wrapper for checksum/framing damage or a sequence discontinuity.
func replaySegment(data []byte) (firstSeq uint64, recs []Record, validSize int, tailErr error) {
	if len(data) < walHeaderSize {
		return 0, nil, 0, errTruncated
	}
	if string(data[:4]) != walMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != walVersion {
		return 0, nil, 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, v)
	}
	firstSeq = binary.LittleEndian.Uint64(data[8:])
	off := walHeaderSize
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			if errors.Is(err, ErrCorrupt) && recordEndsAtEOF(data, off) {
				// A full-length final record with garbage inside and
				// nothing after it: the other torn-write shape (sectors of
				// the unsynced tail persisted out of order), repairable
				// like a short tail. Damage with decodable bytes beyond it
				// stays ErrCorrupt — truncating there would silently drop
				// acknowledged records.
				return firstSeq, recs, off, errTruncated
			}
			return firstSeq, recs, off, err
		}
		if want := firstSeq + uint64(len(recs)); rec.Seq != want {
			return firstSeq, recs, off, fmt.Errorf("%w: sequence %d where %d expected", ErrCorrupt, rec.Seq, want)
		}
		recs = append(recs, rec)
		off += n
	}
	return firstSeq, recs, off, nil
}

// recordEndsAtEOF reports whether the (undecodable) record at off claims a
// plausible length that reaches exactly the end of data — the only corrupt
// shape a torn append can leave, since an append never has bytes after it.
func recordEndsAtEOF(data []byte, off int) bool {
	if len(data)-off < recHeaderSize {
		return false // a short header is already errTruncated
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
	return payloadLen >= minPayload && payloadLen <= maxRecordSize &&
		off+recHeaderSize+payloadLen == len(data)
}

// walSeg is one live segment's bookkeeping.
type walSeg struct {
	name  string
	first uint64
	count int
}

func (s walSeg) last() uint64 { return s.first + uint64(s.count) - 1 }

func segName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.seg", firstSeq) }

// WAL is the append-only, segmented write-ahead log. One goroutine-safe
// writer; replay happens once at open.
type WAL struct {
	fs     FS
	dir    string
	policy FsyncPolicy
	segMax int

	mu      sync.Mutex
	segs    []walSeg // all live segments, ascending; the last one is open
	cur     File     // open handle on the last segment (nil until first append)
	curSize int
	nextSeq uint64
	// dirDirty marks a segment created since the last directory sync: its
	// dir entry is not yet durable, so the next sync must fence SyncDir
	// before any record in it is acknowledged.
	dirDirty bool
	closed   bool

	appendCtr *obs.Counter
	fsyncHist *obs.Histogram
	segGauge  *obs.Gauge
}

// WALOptions configures OpenWAL. Zero values mean: 1 MiB segments,
// FsyncAlways, no observer.
type WALOptions struct {
	SegmentBytes int
	Fsync        FsyncPolicy
	Obs          *obs.Observer
}

// OpenWAL opens (or creates) the log in dir and replays it. Every record
// acknowledged before a crash is returned; a torn tail on the final segment
// — or on a segment whose successor picks up at exactly the next sequence
// number, the shape a failed append followed by rotation leaves — is
// truncated away. Any other damage fails with ErrCorrupt rather than
// silently dropping acknowledged data.
func OpenWAL(fsys FS, dir string, opts WALOptions) (*WAL, []Record, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("ingest: creating WAL dir: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: scanning WAL dir: %w", err)
	}
	var segNames []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			segNames = append(segNames, n)
		}
	}
	sort.Strings(segNames) // %016x names sort numerically

	w := &WAL{
		fs:        fsys,
		dir:       dir,
		policy:    opts.Fsync,
		segMax:    opts.SegmentBytes,
		nextSeq:   1,
		appendCtr: opts.Obs.Counter("ingest.wal.appends.total"),
		fsyncHist: opts.Obs.Histogram("ingest.wal.fsync"),
		segGauge:  opts.Obs.Gauge("ingest.wal.segments"),
	}

	var all []Record
	type repair struct {
		name string
		size int
	}
	var repairs []repair
	droppedTorn := false
	var prevLast uint64 // last seq seen so far (0 = none)
	for i, name := range segNames {
		data, rerr := fsys.ReadFile(join(dir, name))
		if rerr != nil {
			return nil, nil, fmt.Errorf("ingest: reading segment %s: %w", name, rerr)
		}
		firstSeq, recs, validSize, tailErr := replaySegment(data)
		isLast := i == len(segNames)-1
		if errors.Is(tailErr, errTruncated) && validSize == 0 && isLast {
			// Torn header on the newest segment: the crash hit before the
			// header sync. Nothing in it was acknowledged; drop the file.
			if derr := fsys.Remove(join(dir, name)); derr != nil {
				return nil, nil, fmt.Errorf("ingest: dropping torn segment %s: %w", name, derr)
			}
			droppedTorn = true
			continue
		}
		if tailErr != nil && validSize == 0 {
			return nil, nil, fmt.Errorf("ingest: segment %s: %w", name, tailErr)
		}
		if prevLast != 0 && firstSeq <= prevLast {
			return nil, nil, fmt.Errorf("%w: segment %s starts at %d inside already-replayed range", ErrCorrupt, name, firstSeq)
		}
		if tailErr != nil {
			if isLast {
				// Only the torn-write shape (errTruncated, including a
				// garbage final record ending exactly at EOF) is repaired
				// by truncation. CRC or framing damage with further
				// records behind it means acknowledged data would be
				// silently dropped — fail instead.
				if !errors.Is(tailErr, errTruncated) {
					return nil, nil, fmt.Errorf("ingest: segment %s: %w", name, tailErr)
				}
				repairs = append(repairs, repair{name, validSize})
			} else {
				// A damaged tail mid-log is excusable only in the
				// rotated-after-write-error shape: the next segment must
				// continue exactly where the valid prefix ends.
				nextData, nerr := fsys.ReadFile(join(dir, segNames[i+1]))
				if nerr != nil {
					return nil, nil, fmt.Errorf("ingest: reading segment %s: %w", segNames[i+1], nerr)
				}
				nextFirst, _, _, _ := replaySegment(nextData)
				if len(nextData) < walHeaderSize || nextFirst != firstSeq+uint64(len(recs)) {
					return nil, nil, fmt.Errorf("ingest: segment %s: %w (and successor does not continue it)", name, tailErr)
				}
				repairs = append(repairs, repair{name, validSize})
			}
		}
		all = append(all, recs...)
		w.segs = append(w.segs, walSeg{name: name, first: firstSeq, count: len(recs)})
		if len(recs) > 0 {
			prevLast = firstSeq + uint64(len(recs)) - 1
		} else if firstSeq > 0 {
			prevLast = firstSeq - 1
		}
	}
	for _, r := range repairs {
		f, oerr := fsys.Append(join(dir, r.name))
		if oerr != nil {
			return nil, nil, fmt.Errorf("ingest: repairing segment %s: %w", r.name, oerr)
		}
		terr := f.Truncate(int64(r.size))
		cerr := f.Close()
		if terr != nil {
			return nil, nil, fmt.Errorf("ingest: truncating torn tail of %s: %w", r.name, terr)
		}
		if cerr != nil {
			return nil, nil, fmt.Errorf("ingest: repairing segment %s: %w", r.name, cerr)
		}
	}
	if droppedTorn {
		if err := fsys.SyncDir(dir); err != nil {
			return nil, nil, fmt.Errorf("ingest: syncing WAL dir after repair: %w", err)
		}
	}
	if prevLast != 0 {
		w.nextSeq = prevLast + 1
	}
	w.segGauge.Set(float64(len(w.segs)))
	return w, all, nil
}

// EnsureNext raises the WAL's next sequence number to at least seq (used
// after recovery when a checkpoint's watermark outruns the surviving log).
func (w *WAL) EnsureNext(seq uint64) {
	w.mu.Lock()
	if seq > w.nextSeq {
		w.nextSeq = seq
	}
	w.mu.Unlock()
}

// NextSeq returns the sequence number the next append will take.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Append durably logs one review and returns its sequence number. Under
// FsyncAlways a nil error means the record is on stable storage — this is
// the acknowledgment the ingest tier's durability contract hangs on. On a
// write error the partial record is truncated away (or, failing that, the
// segment is abandoned and the next append rotates), so a failed append can
// never corrupt the log for its successors.
func (w *WAL) Append(entity, review string) (uint64, error) {
	return w.append(KindReview, entity, review)
}

// AppendMeta durably logs one entity-metadata upsert (body is the JSON
// EntityMeta) under the same durability contract as Append.
func (w *WAL) AppendMeta(entity, body string) (uint64, error) {
	return w.append(KindMeta, entity, body)
}

func (w *WAL) append(kind RecordKind, entity, body string) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("ingest: WAL is closed")
	}
	rec, err := encodeRecord(w.nextSeq, kind, entity, body)
	if err != nil {
		return 0, err
	}
	if err := w.ensureSegmentLocked(len(rec)); err != nil {
		return 0, err
	}
	n, werr := w.cur.Write(rec)
	if werr != nil || n != len(rec) {
		// Back the partial record out so the segment stays record-aligned.
		// If even that fails, abandon the handle: the next append rotates to
		// a fresh segment, and replay accepts this segment's damaged tail
		// because the successor continues the sequence.
		if terr := w.cur.Truncate(int64(w.curSize)); terr != nil {
			_ = w.cur.Close()
			w.cur = nil
		}
		if werr == nil {
			werr = fmt.Errorf("ingest: short write (%d of %d bytes)", n, len(rec))
		}
		return 0, werr
	}
	w.curSize += len(rec)
	w.segs[len(w.segs)-1].count++
	seq := w.nextSeq
	w.nextSeq++
	if w.policy == FsyncAlways {
		if err := w.syncLocked(); err != nil {
			// The record is written but not known durable: undo the
			// bookkeeping and report failure — the caller must not
			// acknowledge. A crash may or may not keep the bytes; replay
			// tolerates both (the record was never acknowledged).
			w.segs[len(w.segs)-1].count--
			w.curSize -= len(rec)
			w.nextSeq = seq
			if terr := w.cur.Truncate(int64(w.curSize)); terr != nil {
				_ = w.cur.Close()
				w.cur = nil
			}
			return 0, err
		}
	}
	w.appendCtr.Inc()
	return seq, nil
}

// Sync flushes buffered records to stable storage (the FsyncBatch barrier).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.cur == nil {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.policy == FsyncNever {
		return nil
	}
	t0 := time.Now()
	if err := w.cur.Sync(); err != nil {
		return err
	}
	if w.dirDirty {
		// The segment's content is durable but its directory entry may not
		// be: without this fence a crash can drop the whole file and with
		// it records the file sync just "made durable".
		if err := w.fs.SyncDir(w.dir); err != nil {
			return err
		}
		w.dirDirty = false
	}
	w.fsyncHist.Observe(time.Since(t0))
	return nil
}

// ensureSegmentLocked opens the segment the next record lands in: the
// current one, or — when there is none, the record would overflow segMax, or
// the sequence jumped past the segment's contiguous range — a fresh one
// whose header names the next sequence number.
func (w *WAL) ensureSegmentLocked(recLen int) error {
	if w.cur != nil {
		cs := w.segs[len(w.segs)-1]
		contiguous := w.nextSeq == cs.first+uint64(cs.count)
		if contiguous && (cs.count == 0 || w.curSize+recLen <= w.segMax) {
			return nil
		}
		if err := w.rotateOutLocked(); err != nil {
			return err
		}
	}
	name := segName(w.nextSeq)
	f, err := w.fs.Create(join(w.dir, name))
	if err != nil {
		return err
	}
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:], w.nextSeq)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return err
	}
	if w.policy == FsyncAlways {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	w.cur = f
	w.curSize = walHeaderSize
	w.dirDirty = true
	w.segs = append(w.segs, walSeg{name: name, first: w.nextSeq})
	w.segGauge.Set(float64(len(w.segs)))
	return nil
}

// rotateOutLocked seals the current segment: final sync (so a sealed
// segment is always fully durable) and close.
func (w *WAL) rotateOutLocked() error {
	if w.cur == nil {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	err := w.cur.Close()
	w.cur = nil
	w.curSize = 0
	return err
}

// TruncateTo removes every segment whose records all have seq ≤ watermark —
// the compaction step once a checkpoint at watermark is durable. The open
// segment is sealed and rotated away first if it is fully covered. Removal
// runs oldest-first, so a crash mid-truncate leaves a contiguous suffix of
// the log (plus the checkpoint) and recovery still sees every record past
// the watermark.
func (w *WAL) TruncateTo(watermark uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("ingest: WAL is closed")
	}
	if n := len(w.segs); n > 0 && w.cur != nil {
		cs := w.segs[n-1]
		if cs.count > 0 && cs.last() <= watermark {
			if err := w.rotateOutLocked(); err != nil {
				return err
			}
		}
	}
	kept := w.segs[:0]
	removedAny := false
	for i, s := range w.segs {
		open := w.cur != nil && i == len(w.segs)-1
		covered := s.count > 0 && s.last() <= watermark
		stale := s.count == 0 && !open && s.first <= watermark+1
		if (covered || stale) && !open {
			if err := w.fs.Remove(join(w.dir, s.name)); err != nil {
				// Keep this and every later segment; a retry (or the next
				// compaction) finishes the job.
				kept = append(kept, w.segs[i:]...)
				w.segs = kept
				w.segGauge.Set(float64(len(w.segs)))
				return err
			}
			removedAny = true
			continue
		}
		kept = append(kept, s)
	}
	w.segs = kept
	w.segGauge.Set(float64(len(w.segs)))
	if removedAny {
		// Make the unlinks stick. Not load-bearing for safety (a crash
		// resurrecting removed segments replays records at or below a
		// durable checkpoint, which recovery skips) but it bounds how much
		// superseded log a crash can bring back.
		return w.fs.SyncDir(w.dir)
	}
	return nil
}

// SegmentCount returns the number of live segment files.
func (w *WAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// Close seals the log (final sync under FsyncAlways/FsyncBatch) and releases
// the open segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cur == nil {
		return nil
	}
	serr := w.syncLocked()
	cerr := w.cur.Close()
	w.cur = nil
	if serr != nil {
		return serr
	}
	return cerr
}
