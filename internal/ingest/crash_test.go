package ingest

import (
	"context"
	"errors"
	"testing"

	"saccs/internal/index"
)

// crashScenario is one pass of the kill-point matrix: open an ingester on a
// fresh MemFS, arm fault injection to fail the failAt-th mutating filesystem
// operation, and stream items until the first append is refused. It returns
// the filesystem to crash, how many appends were acknowledged, and whether
// the injected fault ever fired (false once failAt exceeds the scenario's
// total operation count — the sweep's termination signal).
func crashScenario(t *testing.T, cfg Config, items []streamItem, failAt int64) (fs *MemFS, acked int, fired bool) {
	t.Helper()
	fs = NewMemFS()
	cfg.FS = fs
	ix := index.New(flatSim{}, 0.5)
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("failAt=%d: open: %v", failAt, err)
	}
	fs.SetFailAfter(failAt)
	for _, it := range items {
		if _, err := ing.Append(context.Background(), it.entity, it.review); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("failAt=%d: append %d failed with non-injected error: %v", failAt, acked, err)
			}
			return fs, acked, true
		}
		acked++
	}
	// Every append was acknowledged. Drain and close cleanly; if even that
	// succeeds, the budget outlasted the whole scenario and the sweep is done.
	if err := ing.Flush(context.Background()); err != nil {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("failAt=%d: flush: %v", failAt, err)
		}
		return fs, acked, true
	}
	if err := ing.Close(); err != nil {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("failAt=%d: close: %v", failAt, err)
		}
		return fs, acked, true
	}
	return fs, acked, false
}

// verifyRecovery crashes fs (keeping torn unsynced bytes), reopens on the
// wreckage, and checks the two durability invariants: every acknowledged
// review survives, and the recovered index is byte-identical to a batch
// build over exactly the reviews that survived — no corrupt postings, no
// phantom entities. When continueStream is set it then streams the remaining
// items into the recovered ingester and requires full convergence with the
// all-items batch build, proving the recovered world is live, not a husk.
func verifyRecovery(t *testing.T, fs *MemFS, cfg Config, items []streamItem, acked, torn int, continueStream bool) {
	t.Helper()
	crashed := fs.Crash(torn)
	cfg.FS = crashed
	ix := index.New(flatSim{}, 0.5)
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("torn=%d: reopen after crash: %v", torn, err)
	}
	recovered := 0
	for _, e := range ing.State() {
		recovered += e.ReviewCount
	}
	if recovered < acked {
		t.Fatalf("torn=%d: lost acknowledged reviews: recovered %d < acked %d", torn, recovered, acked)
	}
	if recovered > len(items) {
		t.Fatalf("torn=%d: recovered %d reviews, only %d were ever appended", torn, recovered, len(items))
	}
	mustEqualIndexes(t, "recovered index", ix, batchIndex(items[:recovered]))
	if continueStream {
		appendAll(t, ing, items[recovered:])
		if err := ing.Flush(context.Background()); err != nil {
			t.Fatalf("torn=%d: flush after recovery: %v", torn, err)
		}
		mustEqualIndexes(t, "stream resumed after recovery", ix, batchIndex(items))
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("torn=%d: close recovered ingester: %v", torn, err)
	}
}

// sweepCrashMatrix kills the scenario at every mutating filesystem operation
// in turn — WAL record writes (mid-record: a failed write persists half its
// payload), per-append fsyncs, segment-header writes at rotation, delta-file
// writes at publish, and under compaction the checkpoint tmp/sync/rename,
// base rewrite, superseded-file removes, and WAL truncation — and proves
// recovery at each kill point for both a clean record-boundary crash
// (torn=0) and a torn trailing write (torn=3).
func sweepCrashMatrix(t *testing.T, cfg Config, items []streamItem) {
	const maxOps = 4000
	kills := 0
	for failAt := int64(1); ; failAt++ {
		if failAt > maxOps {
			t.Fatalf("scenario still failing after %d operations — runaway op count", maxOps)
		}
		fs, acked, fired := crashScenario(t, cfg, items, failAt)
		if !fired {
			if acked != len(items) {
				t.Fatalf("injection never fired but only %d/%d appends acked", acked, len(items))
			}
			t.Logf("matrix complete: %d kill points, %d items", kills, len(items))
			return
		}
		kills++
		for _, torn := range []int{0, 3} {
			verifyRecovery(t, fs, cfg, items, acked, torn, torn == 0)
		}
	}
}

func TestCrashMatrixStreaming(t *testing.T) {
	// Publish-heavy, no compaction: kill points land on WAL appends, fsyncs,
	// rotations, and delta-file writes.
	items := genStream(21, 60, 6, testTags)
	sweepCrashMatrix(t, Config{
		Dir:             "ingest",
		PublishEvery:    4,
		PublishInterval: -1,
		CompactAfter:    -1,
		SegmentBytes:    1 << 10,
	}, items)
}

// metaScenario mirrors crashScenario but writes each entity's metadata record
// immediately before that entity's first review, so the sweep's kill points
// land on metadata WAL appends too. It returns the acked metadata set: an
// entity appears only once the PutMeta that carries its (unique) metadata was
// acknowledged.
func metaScenario(t *testing.T, cfg Config, items []streamItem, metaOf func(string) EntityMeta, failAt int64) (fs *MemFS, ackedMeta map[string]EntityMeta, fired bool) {
	t.Helper()
	fs = NewMemFS()
	cfg.FS = fs
	ix := index.New(flatSim{}, 0.5)
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("failAt=%d: open: %v", failAt, err)
	}
	fs.SetFailAfter(failAt)
	ackedMeta = map[string]EntityMeta{}
	for i, it := range items {
		if _, ok := ackedMeta[it.entity]; !ok {
			if _, err := ing.PutMeta(context.Background(), it.entity, metaOf(it.entity)); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("failAt=%d: put meta %d: %v", failAt, i, err)
				}
				return fs, ackedMeta, true
			}
			ackedMeta[it.entity] = metaOf(it.entity)
		}
		if _, err := ing.Append(context.Background(), it.entity, it.review); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("failAt=%d: append %d: %v", failAt, i, err)
			}
			return fs, ackedMeta, true
		}
	}
	if err := ing.Flush(context.Background()); err != nil {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("failAt=%d: flush: %v", failAt, err)
		}
		return fs, ackedMeta, true
	}
	if err := ing.Close(); err != nil {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("failAt=%d: close: %v", failAt, err)
		}
		return fs, ackedMeta, true
	}
	return fs, ackedMeta, false
}

// TestCrashMatrixMetadata proves metadata durability at every kill point: any
// acknowledged PutMeta must survive crash recovery bit-exactly, whether the
// record was still in the WAL tail or already folded into a checkpoint by
// compaction.
func TestCrashMatrixMetadata(t *testing.T) {
	items := genStream(23, 30, 5, testTags)
	metaOf := func(entity string) EntityMeta {
		return EntityMeta{Name: "Name of " + entity, City: "city-" + entity, Cuisine: "cuisine-" + entity}
	}
	cfg := Config{
		Dir:             "ingest",
		PublishEvery:    2,
		PublishInterval: -1,
		CompactAfter:    1,
		SegmentBytes:    1 << 9,
	}
	const maxOps = 4000
	kills := 0
	for failAt := int64(1); ; failAt++ {
		if failAt > maxOps {
			t.Fatalf("scenario still failing after %d operations — runaway op count", maxOps)
		}
		fs, ackedMeta, fired := metaScenario(t, cfg, items, metaOf, failAt)
		if !fired {
			t.Logf("metadata matrix complete: %d kill points", kills)
			return
		}
		kills++
		for _, torn := range []int{0, 3} {
			crashed := fs.Crash(torn)
			recfg := cfg
			recfg.FS = crashed
			ix := index.New(flatSim{}, 0.5)
			ing, err := Open(recfg, ix, testTags, nil, splitExtract)
			if err != nil {
				t.Fatalf("failAt=%d torn=%d: reopen: %v", failAt, torn, err)
			}
			got := ing.Meta()
			for entity, want := range ackedMeta {
				if got[entity] != want {
					t.Fatalf("failAt=%d torn=%d: meta for %s = %+v, want %+v", failAt, torn, entity, got[entity], want)
				}
			}
			if err := ing.Close(); err != nil {
				t.Fatalf("failAt=%d torn=%d: close: %v", failAt, torn, err)
			}
		}
	}
}

func TestCrashMatrixCompacting(t *testing.T) {
	// Compaction after every publish: kill points land inside checkpoint
	// write/sync/rename, base-snapshot rewrite, superseded-artifact removal,
	// and WAL truncation — the window where an interrupted cleanup must
	// never orphan the only durable copy of an acknowledged review.
	items := genStream(22, 40, 5, testTags)
	sweepCrashMatrix(t, Config{
		Dir:             "ingest",
		PublishEvery:    2,
		PublishInterval: -1,
		CompactAfter:    1,
		SegmentBytes:    1 << 9,
	}, items)
}
