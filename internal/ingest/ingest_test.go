package ingest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"saccs/internal/index"
)

// flatSim is a cheap deterministic similarity: exact match or a sub-theta
// constant. It keeps the merge logic under test without dragging the
// taxonomy in.
type flatSim struct{}

func (flatSim) Phrase(a, b string) float64 {
	if a == b {
		return 1
	}
	if (a == "good food" && b == "decent food") || (a == "decent food" && b == "good food") {
		return 0.6
	}
	return 0.3
}

// splitExtract is the test extractor: review texts are "tag|tag|…", so
// extraction is deterministic, order-preserving, and trivially batchable.
func splitExtract(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		if t == "" {
			out[i] = nil
			continue
		}
		out[i] = strings.Split(t, "|")
	}
	return out
}

// streamItem is one append in a generated scenario.
type streamItem struct {
	entity string
	review string
}

// genStream builds a deterministic review stream: n reviews over e entities
// drawing tags (and near-miss noise tags) from the given list.
func genStream(seed int64, n, e int, tags []string) []streamItem {
	rng := rand.New(rand.NewSource(seed))
	items := make([]streamItem, n)
	for i := range items {
		k := 1 + rng.Intn(3)
		parts := make([]string, 0, k)
		for j := 0; j < k; j++ {
			if rng.Intn(4) == 0 {
				parts = append(parts, fmt.Sprintf("noise tag %d", rng.Intn(6)))
			} else {
				parts = append(parts, tags[rng.Intn(len(tags))])
			}
		}
		items[i] = streamItem{
			entity: fmt.Sprintf("e%02d", rng.Intn(e)),
			review: strings.Join(parts, "|"),
		}
	}
	return items
}

var testTags = []string{"good food", "nice staff", "cozy place", "fair prices"}

// repeatItem builds n identical appends.
func repeatItem(entity, review string, n int) []streamItem {
	out := make([]streamItem, n)
	for i := range out {
		out[i] = streamItem{entity: entity, review: review}
	}
	return out
}

// batchState replays a stream the way a batch build would see it: per-entity
// accumulated tags in arrival order, entities in first-seen order.
func batchState(items []streamItem) []index.EntityReviews {
	type st struct {
		reviews int
		tags    []string
	}
	state := map[string]*st{}
	var order []string
	for _, it := range items {
		s, ok := state[it.entity]
		if !ok {
			s = &st{}
			state[it.entity] = s
			order = append(order, it.entity)
		}
		s.reviews++
		s.tags = append(s.tags, splitExtract([]string{it.review})[0]...)
	}
	out := make([]index.EntityReviews, 0, len(order))
	for _, id := range order {
		out = append(out, index.EntityReviews{EntityID: id, ReviewCount: state[id].reviews, Tags: state[id].tags})
	}
	return out
}

func batchIndex(items []streamItem) *index.Index {
	ix := index.New(flatSim{}, 0.5)
	ix.Build(testTags, batchState(items))
	return ix
}

func saveBytes(t *testing.T, ix *index.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

// mustEqualIndexes asserts byte-identical Save output — the bit-identity
// bar every streamed path must clear against its batch twin.
func mustEqualIndexes(t *testing.T, what string, got, want *index.Index) {
	t.Helper()
	g, w := saveBytes(t, got), saveBytes(t, want)
	if !bytes.Equal(g, w) {
		t.Fatalf("%s: streamed index differs from batch build\nstreamed:\n%s\nbatch:\n%s", what, g, w)
	}
}

func appendAll(t *testing.T, ing *Ingester, items []streamItem) {
	t.Helper()
	for i, it := range items {
		if _, err := ing.Append(context.Background(), it.entity, it.review); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestStreamedEqualsBatchInMemory(t *testing.T) {
	items := genStream(7, 200, 9, testTags)
	for _, every := range []int{1, 7, 64, -1} {
		ix := index.New(flatSim{}, 0.5)
		ing, err := Open(Config{PublishEvery: every, PublishInterval: -1}, ix, testTags, nil, splitExtract)
		if err != nil {
			t.Fatalf("open (every=%d): %v", every, err)
		}
		appendAll(t, ing, items)
		if err := ing.Flush(context.Background()); err != nil {
			t.Fatalf("flush: %v", err)
		}
		mustEqualIndexes(t, fmt.Sprintf("PublishEvery=%d", every), ix, batchIndex(items))
		if err := ing.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

func TestStreamedEqualsBatchDurable(t *testing.T) {
	items := genStream(11, 150, 7, testTags)
	fs := NewMemFS()
	ix := index.New(flatSim{}, 0.5)
	cfg := Config{FS: fs, Dir: "ingest", PublishEvery: 16, PublishInterval: -1, CompactAfter: 3, SegmentBytes: 1 << 12}
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, ing, items)
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	mustEqualIndexes(t, "durable stream at quiescence", ix, batchIndex(items))
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Clean restart (no crash): recovery must reproduce the same index from
	// checkpoint + WAL tail.
	ix2 := index.New(flatSim{}, 0.5)
	ing2, err := Open(cfg, ix2, nil, nil, splitExtract)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	mustEqualIndexes(t, "after clean restart", ix2, batchIndex(items))
	if err := ing2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

func TestSeededStreamContinuesBatchWorld(t *testing.T) {
	// A batch-built world seeds the ingester; further appends must land on
	// top of it exactly as if the whole history had been one batch.
	history := genStream(3, 80, 6, testTags)
	live := genStream(4, 60, 6, testTags)
	seed := batchState(history)

	ix := index.New(flatSim{}, 0.5)
	ix.Build(testTags, seed)
	ing, err := Open(Config{PublishEvery: 10, PublishInterval: -1}, ix, testTags, seed, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, ing, live)
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	mustEqualIndexes(t, "seeded stream", ix, batchIndex(append(append([]streamItem(nil), history...), live...)))
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestFailedPublishRetriesWithoutDoubleFolding(t *testing.T) {
	// A publication that fails inside MergeDelta (here: cancelled context,
	// the shape a count-triggered publish inherits from its Append's ctx)
	// must leave the batch fully pending and the entity state untouched —
	// the retry re-extracts and re-folds from scratch. A fold committed
	// before the failed merge would double-count every review in the batch
	// and permanently break batch/stream bit-identity.
	ix := index.New(flatSim{}, 0.5)
	ing, err := Open(Config{PublishEvery: -1, PublishInterval: -1}, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	items := genStream(17, 25, 4, testTags)
	appendAll(t, ing, items)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 3; i++ {
		if err := ing.Flush(cancelled); err == nil {
			t.Fatalf("flush %d with cancelled context succeeded", i)
		}
	}
	if got := ing.Pending(); got != len(items) {
		t.Fatalf("failed publishes consumed pending reviews: %d left, want %d", got, len(items))
	}
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	mustEqualIndexes(t, "retry after failed publish", ix, batchIndex(items))
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestIntervalDefaultAppliesWithCountTriggerDisabled(t *testing.T) {
	// PublishEvery < 0 with PublishInterval 0 must still pick the 250ms
	// ticker default — otherwise appends would never publish until an
	// explicit Flush, silently violating the documented staleness bound.
	cfg := Config{PublishEvery: -1}.withDefaults()
	if cfg.PublishInterval != 250*time.Millisecond {
		t.Fatalf("PublishInterval default = %v with count trigger disabled, want 250ms", cfg.PublishInterval)
	}
}

func TestPublishIntervalBoundsStaleness(t *testing.T) {
	ix := index.New(flatSim{}, 0.5)
	// Count trigger effectively off; only the ticker can publish.
	ing, err := Open(Config{PublishEvery: -1, PublishInterval: 5 * time.Millisecond}, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer ing.Close()
	if _, err := ing.Append(context.Background(), "e1", "good food"); err != nil {
		t.Fatalf("append: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(ix.Lookup("good food")) == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("review not published within the staleness bound")
}

// --- compaction edge cases --------------------------------------------------

func TestCompactEmptyWAL(t *testing.T) {
	fs := NewMemFS()
	ix := index.New(flatSim{}, 0.5)
	cfg := Config{FS: fs, Dir: "ingest", PublishInterval: -1}
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := ing.Compact(); err != nil {
		t.Fatalf("compacting an empty log: %v", err)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ix2 := index.New(flatSim{}, 0.5)
	ing2, err := Open(cfg, ix2, nil, nil, splitExtract)
	if err != nil {
		t.Fatalf("reopen after empty compaction: %v", err)
	}
	if got := ing2.Published(); got != 0 {
		t.Fatalf("published watermark = %d after empty compaction, want 0", got)
	}
	if err := ing2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

func TestCompactSingleSegmentTruncate(t *testing.T) {
	fs := NewMemFS()
	items := genStream(21, 12, 4, testTags)
	ix := index.New(flatSim{}, 0.5)
	cfg := Config{FS: fs, Dir: "ingest", PublishEvery: -1, PublishInterval: -1, CompactAfter: -1}
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, ing, items)
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := ing.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// All records are at or below the watermark: the single data segment
	// must be gone (at most a fresh empty one remains).
	names, err := fs.ReadDir("ingest")
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && n == segName(1) {
			t.Fatalf("compaction left the fully-covered first segment behind: %v", names)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ix2 := index.New(flatSim{}, 0.5)
	ing2, err := Open(cfg, ix2, nil, nil, splitExtract)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	mustEqualIndexes(t, "after single-segment compaction", ix2, batchIndex(items))
	if err := ing2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

func TestCompactionRacingFreshAppends(t *testing.T) {
	fs := NewMemFS()
	items := genStream(33, 300, 8, testTags)
	ix := index.New(flatSim{}, 0.5)
	cfg := Config{FS: fs, Dir: "ingest", PublishEvery: 8, PublishInterval: -1, CompactAfter: -1, SegmentBytes: 1 << 11}
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// One goroutine compacts continuously while another appends: no append
	// may be lost to a concurrent truncation, and the quiescent index must
	// still match the batch build. The handshake channel forces real overlap
	// — every 32 appends the appender waits for a compaction to complete, so
	// the interleaving cannot degenerate into "all appends, then compacts".
	stop := make(chan struct{})
	compacted := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if err := ing.Compact(); err != nil {
				t.Errorf("racing compact: %v", err)
				close(compacted)
				return
			}
			select {
			case <-stop:
				return
			case compacted <- struct{}{}:
			default:
			}
		}
	}()
	for i, it := range items {
		if _, err := ing.Append(context.Background(), it.entity, it.review); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if i%32 == 31 {
			<-compacted
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	mustEqualIndexes(t, "appends racing compaction", ix, batchIndex(items))
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// And the durable state must recover to the same index. The reopen
	// passes the tag list, as the facade always does: the checkpoint is the
	// authority when present, but the caller's vocabulary is the fallback
	// when the crash landed before the first compaction.
	ix2 := index.New(flatSim{}, 0.5)
	ing2, err := Open(cfg, ix2, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	mustEqualIndexes(t, "recovery after racing compaction", ix2, batchIndex(items))
	if err := ing2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

func TestDuplicatePostingsAcrossMiniSnapshotsNewestWins(t *testing.T) {
	// The same entity goes dirty in several publications; each mini-snapshot
	// carries its own (entity, tag) posting. The merge rule is newest-wins —
	// NOT max-degree — because Eq. 1 is non-monotone: e1's "good food"
	// degree first rises with a supporting review, then falls when an
	// off-tag review dilutes the mention rate. The final index must track
	// the latest full-state recomputation exactly, including downward moves.
	ix := index.New(flatSim{}, 0.5)
	ing, err := Open(Config{PublishEvery: -1, PublishInterval: -1}, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Three mini-snapshots, all carrying an (e1, "good food") posting:
	// 10 strong reviews, 10 more strong reviews (degree rises), then one
	// weakly-similar mention whose 0.6 score drags the Eq. 1 mean down
	// faster than log(|Re|+1) grows (degree falls).
	batches := [][]streamItem{
		repeatItem("e1", "good food", 10),
		repeatItem("e1", "good food", 10),
		{{"e1", "decent food"}},
	}
	var sofar []streamItem
	var degrees []float64
	for i, batch := range batches {
		sofar = append(sofar, batch...)
		for _, it := range batch {
			if _, aerr := ing.Append(context.Background(), it.entity, it.review); aerr != nil {
				t.Fatalf("batch %d append: %v", i, aerr)
			}
		}
		if ferr := ing.Flush(context.Background()); ferr != nil {
			t.Fatalf("flush %d: %v", i, ferr)
		}
		// Each flush published one mini-snapshot; the live index must equal
		// a batch build of the prefix after every one of them.
		mustEqualIndexes(t, fmt.Sprintf("mini-snapshot %d", i+1), ix, batchIndex(sofar))
		entries := ix.Lookup("good food")
		if len(entries) != 1 || entries[0].EntityID != "e1" {
			t.Fatalf("batch %d: postings = %+v, want exactly e1", i, entries)
		}
		degrees = append(degrees, entries[0].Degree)
	}
	if !(degrees[1] > degrees[0]) {
		t.Fatalf("degree did not rise with supporting reviews: %v", degrees)
	}
	if !(degrees[2] < degrees[1]) {
		t.Fatalf("degree did not fall with a diluting review — a max-degree merge would pin it at %v: %v", degrees[1], degrees)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestAddTagsWidensFutureDeltas(t *testing.T) {
	fs := NewMemFS()
	ix := index.New(flatSim{}, 0.5)
	cfg := Config{FS: fs, Dir: "ingest", PublishEvery: -1, PublishInterval: -1}
	ing, err := Open(cfg, ix, testTags[:2], nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, ing, []streamItem{{"e1", "cozy place"}})
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if ix.Has("cozy place") {
		t.Fatalf("unindexed tag appeared before AddTags")
	}
	if err := ing.AddTags([]string{"cozy place"}); err != nil {
		t.Fatalf("add tags: %v", err)
	}
	appendAll(t, ing, []streamItem{{"e1", "cozy place"}})
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := ix.Lookup("cozy place"); len(got) != 1 {
		t.Fatalf("widened tag postings = %+v, want e1", got)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The widened tag list is durable (AddTags checkpoints): a restart must
	// keep indexing it.
	ix2 := index.New(flatSim{}, 0.5)
	ing2, err := Open(cfg, ix2, nil, nil, splitExtract)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !ix2.Has("cozy place") {
		t.Fatalf("widened tag list lost across restart; tags = %v", ing2.Tags())
	}
	if err := ing2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

func TestRebaseResetsStreamState(t *testing.T) {
	fs := NewMemFS()
	ix := index.New(flatSim{}, 0.5)
	cfg := Config{FS: fs, Dir: "ingest", PublishEvery: 4, PublishInterval: -1}
	ing, err := Open(cfg, ix, testTags, nil, splitExtract)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendAll(t, ing, genStream(5, 30, 5, testTags))
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// A batch reindex supersedes everything streamed so far.
	fresh := genStream(6, 40, 5, testTags)
	seed := batchState(fresh)
	ix2 := index.New(flatSim{}, 0.5)
	ix2.Build(testTags, seed)
	if err := ing.Rebase(ix2, testTags, seed, nil); err != nil {
		t.Fatalf("rebase: %v", err)
	}
	live := genStream(8, 25, 5, testTags)
	appendAll(t, ing, live)
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want := batchIndex(append(append([]streamItem(nil), fresh...), live...))
	mustEqualIndexes(t, "rebased stream", ix2, want)
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recovery must resume from the rebase checkpoint, not the pre-rebase
	// stream.
	ix3 := index.New(flatSim{}, 0.5)
	ing2, err := Open(cfg, ix3, nil, nil, splitExtract)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	mustEqualIndexes(t, "recovery after rebase", ix3, want)
	if err := ing2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}
