package ingest

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the failure MemFS returns once its operation budget is
// exhausted (SetFailAfter). Callers distinguish it from genuine corruption
// in tests.
var ErrInjected = errors.New("ingest: injected fault")

// MemFS is the fault-injection filesystem for the crash-recovery harness.
// It models two properties real filesystems have and unit tests usually
// ignore. First, a successful Write is NOT durable: each file tracks its
// durable content prefix, and only Sync extends it. Second, a directory
// entry is NOT durable either: a file Create (or the new name of a Rename)
// survives a crash only once SyncDir runs on its directory, and a Remove
// (or a Rename's old name) of a durably-linked file un-happens on crash
// until SyncDir makes the unlink stick. Crash returns the filesystem a
// machine reset would leave behind: files without a durable entry vanish
// wholly, unsynced removals resurrect with their durable content, and
// surviving files are cut back to their durable prefix plus an optional
// torn fragment of the unsynced suffix (a partially persisted write).
// SetFailAfter makes the n+1-th mutating operation (and every one after it)
// fail with ErrInjected, so a test can kill the ingester at an exact write,
// sync, or truncate boundary and then Crash it.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	// removed holds durably-linked files whose unlink has not reached a
	// SyncDir yet: a crash resurrects them with their durable content.
	removed map[string]*memFile
	// budget counts remaining mutating operations; <0 means unlimited.
	budget int64
}

type memFile struct {
	data    []byte
	durable int
	// entryDurable reports whether the directory entry naming this file
	// would survive a crash (set by SyncDir, not by handle Syncs).
	entryDurable bool
}

// NewMemFS returns an empty in-memory filesystem with fault injection
// disabled.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, removed: map[string]*memFile{}, budget: -1}
}

// SetFailAfter arms fault injection: the next n mutating operations (Write,
// Sync, Truncate, Remove, Rename, Create, Append) succeed, then every
// subsequent one fails with ErrInjected. Negative n disables injection.
func (m *MemFS) SetFailAfter(n int64) {
	m.mu.Lock()
	m.budget = n
	m.mu.Unlock()
}

// spend consumes one unit of the operation budget; it reports false once
// the budget is exhausted. Callers hold m.mu.
func (m *MemFS) spend() bool {
	if m.budget < 0 {
		return true
	}
	if m.budget == 0 {
		return false
	}
	m.budget--
	return true
}

// Crash simulates a machine reset and returns the surviving filesystem:
// files whose directory entry never reached a SyncDir are gone entirely,
// files removed (or renamed away) without a SyncDir resurrect with their
// durable content, and every survivor is truncated to its durable prefix
// plus up to torn bytes of the unsynced suffix (a torn write). The original
// MemFS is untouched, so one pre-crash state can seed many kill points.
func (m *MemFS) Crash(torn int) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		if !f.entryDurable {
			continue
		}
		keep := f.durable
		if extra := len(f.data) - f.durable; extra > 0 && torn > 0 {
			if extra > torn {
				extra = torn
			}
			keep += extra
		}
		out.files[name] = &memFile{data: append([]byte(nil), f.data[:keep]...), durable: keep, entryDurable: true}
	}
	for name, f := range m.removed {
		if _, ok := out.files[name]; ok {
			continue
		}
		out.files[name] = &memFile{data: append([]byte(nil), f.data[:f.durable]...), durable: f.durable, entryDurable: true}
	}
	return out
}

// DurableLen returns how many bytes of name would survive a crash (0 when
// the file does not exist or its directory entry was never synced).
func (m *MemFS) DurableLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok && f.entryDurable {
		return f.durable
	}
	return 0
}

// Len returns name's current (buffered) size, or 0 when absent.
func (m *MemFS) Len(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return len(f.data)
	}
	return 0
}

// Corrupt flips one byte at off in name (test helper for CRC coverage).
func (m *MemFS) Corrupt(name string, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || off < 0 || off >= len(f.data) {
		return fmt.Errorf("ingest: corrupt %q at %d: out of range", name, off)
	}
	f.data[off] ^= 0xff
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.spend() {
		return nil, fmt.Errorf("create %s: %w", name, ErrInjected)
	}
	// Overwriting an existing durable entry keeps the entry durable (the
	// name persists) but resets the durable content — a crash shows an
	// empty file, the worst case an unsynced O_TRUNC can leave. A pending
	// unsynced removal of the same name is deliberately NOT cleared: until
	// SyncDir, a crash may resurrect the old content under this name.
	entryDur := false
	if prev, ok := m.files[name]; ok {
		entryDur = prev.entryDurable
	}
	m.files[name] = &memFile{entryDurable: entryDur}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.spend() {
		return nil, fmt.Errorf("append %s: %w", name, ErrInjected)
	}
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], string(filepath.Separator)) {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// durableSnapshot returns the crash-surviving image of f, for the removed
// map. Callers hold m.mu.
func durableSnapshot(f *memFile) *memFile {
	return &memFile{data: append([]byte(nil), f.data[:f.durable]...), durable: f.durable, entryDurable: true}
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.spend() {
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	if f.entryDurable {
		m.removed[name] = durableSnapshot(f)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.spend() {
		return fmt.Errorf("rename %s: %w", oldpath, ErrInjected)
	}
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	// Until SyncDir the rename is not durable: a crash shows the
	// pre-rename directory — oldpath back in place (if it was durably
	// linked), newpath still holding whatever durable file it replaced.
	if f.entryDurable {
		m.removed[oldpath] = durableSnapshot(f)
	}
	if prev, ok := m.files[newpath]; ok && prev.entryDurable {
		m.removed[newpath] = durableSnapshot(prev)
	}
	m.files[newpath] = &memFile{data: f.data, durable: f.durable}
	return nil
}

// MkdirAll is a no-op: MemFS files are keyed by full path.
func (m *MemFS) MkdirAll(string) error { return nil }

// SyncDir makes dir's entries durable: files directly under dir survive a
// crash by name, and pending removals under dir stop resurrecting.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.spend() {
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjected)
	}
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	direct := func(name string) bool {
		return strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], string(filepath.Separator))
	}
	for name, f := range m.files {
		if direct(name) {
			f.entryDurable = true
		}
	}
	for name := range m.removed {
		if direct(name) {
			delete(m.removed, name)
		}
	}
	return nil
}

// memHandle is an open MemFS file. All writes append (the only access
// pattern the ingest tier uses); Truncate cuts the buffered tail.
type memHandle struct {
	fs     *MemFS
	name   string
	closed bool
}

func (h *memHandle) file() (*memFile, error) {
	f, ok := h.fs.files[h.name]
	if !ok || h.closed {
		return nil, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrClosed}
	}
	return f, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if !h.fs.spend() {
		// A failed write may still have persisted a prefix — that is exactly
		// the torn-write hazard the WAL must back out of. Model the worst
		// case: half the payload lands in the buffer.
		n := len(p) / 2
		f.data = append(f.data, p[:n]...)
		return n, fmt.Errorf("write %s: %w", h.name, ErrInjected)
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	if !h.fs.spend() {
		return fmt.Errorf("sync %s: %w", h.name, ErrInjected)
	}
	f.durable = len(f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	if !h.fs.spend() {
		return fmt.Errorf("truncate %s: %w", h.name, ErrInjected)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("truncate %s: size %d out of range", h.name, size)
	}
	f.data = f.data[:size]
	if f.durable > int(size) {
		f.durable = int(size)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
