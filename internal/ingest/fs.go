// Package ingest is the streaming tier on top of the immutable-snapshot
// index: an append-only, CRC-checksummed write-ahead log that acknowledges a
// review only once it is durable, a delta-build path that extracts tags at
// ingest time and folds per-batch mini-snapshots into the published
// index.Snapshot with bounded staleness, and LSM-style compaction that
// checkpoints entity state, rewrites the base snapshot, and truncates the
// WAL past the durable watermark. Open replays the WAL so a crash never
// loses an acknowledged review.
//
// Everything that touches disk goes through the FS seam below, so the
// crash-recovery test harness can substitute MemFS: an in-memory filesystem
// that tracks which bytes are durable (synced) versus merely buffered,
// simulates a machine crash by discarding the buffered suffix (optionally
// leaving a torn prefix of it), and injects write/sync/remove failures at an
// exact operation count.
package ingest

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam: the minimal surface the WAL, checkpoints, and
// snapshot files need. OSFS is the real thing; MemFS is the fault-injecting
// test double.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// ReadFile returns name's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically moves oldpath over newpath.
	Rename(oldpath, newpath string) error
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// SyncDir makes dir's entries durable. File Syncs persist content only:
	// a Create, Rename, or Remove survives a crash only once the parent
	// directory is synced, so every durability acknowledgment that depends
	// on a file existing (a fresh WAL segment, a renamed checkpoint) must
	// be fenced by SyncDir.
	SyncDir(dir string) error
}

// File is an open writable file. Write buffers; Sync makes everything
// written so far durable; Truncate discards the tail past size (used to back
// out a partially written record).
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OSFS is the production FS: thin delegation to the os package.
type OSFS struct{}

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// join builds a path inside dir; factored so both FS implementations agree
// on the key format.
func join(dir, name string) string { return filepath.Join(dir, name) }
