package ingest

import (
	"errors"
	"fmt"
	"testing"
)

// appendN appends reviews r<1>…r<n> for entities cycling a..c and returns
// the acknowledged records in order.
func appendN(t *testing.T, w *WAL, from, n int) []Record {
	t.Helper()
	var out []Record
	for i := from; i < from+n; i++ {
		entity := fmt.Sprintf("e%d", i%3)
		review := fmt.Sprintf("review %d with some padding to give records a bit of width", i)
		seq, err := w.Append(entity, review)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		out = append(out, Record{Seq: seq, Entity: entity, Body: review})
	}
	return out
}

func mustOpenWAL(t *testing.T, fs FS, opts WALOptions) (*WAL, []Record) {
	t.Helper()
	w, recs, err := OpenWAL(fs, "wal", opts)
	if err != nil {
		t.Fatalf("open WAL: %v", err)
	}
	return w, recs
}

func wantRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestWALAppendReplayAcrossRotation(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments force several rotations.
	w, recs := mustOpenWAL(t, fs, WALOptions{SegmentBytes: 256})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := appendN(t, w, 0, 40)
	if w.SegmentCount() < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", w.SegmentCount())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, got := mustOpenWAL(t, fs, WALOptions{SegmentBytes: 256})
	wantRecords(t, got, want)
}

func TestWALReplayEmptyDirAndSeqStart(t *testing.T) {
	fs := NewMemFS()
	w, recs := mustOpenWAL(t, fs, WALOptions{})
	if len(recs) != 0 {
		t.Fatalf("empty dir replayed %d records", len(recs))
	}
	if got := w.NextSeq(); got != 1 {
		t.Fatalf("fresh WAL NextSeq = %d, want 1", got)
	}
	w.EnsureNext(100)
	acked := appendN(t, w, 0, 3)
	if acked[0].Seq != 100 {
		t.Fatalf("first seq after EnsureNext(100) = %d, want 100", acked[0].Seq)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, got := mustOpenWAL(t, fs, WALOptions{})
	wantRecords(t, got, acked)
}

func TestWALBatchPolicyCrashKeepsSyncedPrefix(t *testing.T) {
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{Fsync: FsyncBatch})
	synced := appendN(t, w, 0, 5)
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	unsynced := appendN(t, w, 5, 4)
	// Crash with every possible torn length of the unsynced suffix: replay
	// must always recover at least the synced prefix, and anything beyond it
	// must be a clean prefix of the unsynced appends — never garbage.
	for torn := 0; torn < 400; torn += 7 {
		crashed := fs.Crash(torn)
		_, got, err := OpenWAL(crashed, "wal", WALOptions{Fsync: FsyncBatch})
		if err != nil {
			t.Fatalf("torn=%d: reopen: %v", torn, err)
		}
		if len(got) < len(synced) {
			t.Fatalf("torn=%d: lost synced records: %d < %d", torn, len(got), len(synced))
		}
		all := append(append([]Record(nil), synced...), unsynced...)
		wantRecords(t, got, all[:len(got)])
	}
}

func TestWALCorruptMiddleRejected(t *testing.T) {
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{SegmentBytes: 256})
	acked := appendN(t, w, 0, 40)
	if w.SegmentCount() < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", w.SegmentCount())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Flip a byte in the middle of the FIRST segment. The damage is mid-log:
	// the successor segment does not continue from the surviving prefix, so
	// replay must refuse rather than silently drop acknowledged records.
	// (Damage at the tail of the LAST segment is different — that is the
	// torn-write shape, repaired by truncation; see the crash tests.)
	name := join("wal", segName(acked[0].Seq))
	if err := fs.Corrupt(name, fs.Len(name)/2); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	_, _, err := OpenWAL(fs, "wal", WALOptions{SegmentBytes: 256})
	if err == nil {
		t.Fatalf("reopen accepted a corrupt mid-log segment")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reopen error = %v, want ErrCorrupt", err)
	}
}

func TestWALCorruptLastSegmentMidFileRejected(t *testing.T) {
	// Damage in the MIDDLE of the final segment — with acknowledged records
	// decodable beyond it — is corruption, not a torn tail: repair-by-
	// truncation would silently drop those later records, so replay must
	// refuse.
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{})
	acked := appendN(t, w, 0, 12)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if w.SegmentCount() != 1 {
		t.Fatalf("want a single segment, got %d", w.SegmentCount())
	}
	name := join("wal", segName(acked[0].Seq))
	if err := fs.Corrupt(name, fs.Len(name)/2); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	_, _, err := OpenWAL(fs, "wal", WALOptions{})
	if err == nil {
		t.Fatalf("reopen truncated away acknowledged records after mid-segment damage")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reopen error = %v, want ErrCorrupt", err)
	}
}

func TestWALCorruptFinalRecordRepairedAsTornTail(t *testing.T) {
	// Damage inside the LAST record — garbage bytes, full-length framing,
	// nothing after it — is the shape a torn write leaves when sectors
	// persist out of order. Replay repairs it by truncation and every
	// earlier record survives.
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{})
	acked := appendN(t, w, 0, 12)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	name := join("wal", segName(acked[0].Seq))
	if err := fs.Corrupt(name, fs.Len(name)-3); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	_, got, err := OpenWAL(fs, "wal", WALOptions{})
	if err != nil {
		t.Fatalf("reopen after torn final record: %v", err)
	}
	wantRecords(t, got, acked[:len(acked)-1])
}

func TestWALCrashWithoutDirSyncKeepsAckedRecords(t *testing.T) {
	// Under FsyncAlways every ack implies the segment's directory entry is
	// durable too: a crash right after the ack (nothing else synced) must
	// not lose the record — the regression a missing SyncDir fence causes,
	// now modeled by MemFS dropping files whose entry never reached a
	// directory sync.
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{})
	acked := appendN(t, w, 0, 3)
	_, got, err := OpenWAL(fs.Crash(0), "wal", WALOptions{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	wantRecords(t, got, acked)
}

func TestWALWriteErrorRotatesAndRecovers(t *testing.T) {
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{})
	acked := appendN(t, w, 0, 6)

	// Exhaust the op budget so the next append's write fails half-way AND
	// the back-out truncate fails too: the segment is left with a torn tail
	// and the handle is abandoned.
	fs.SetFailAfter(0)
	if _, err := w.Append("eX", "doomed review"); err == nil {
		t.Fatalf("append succeeded under fault injection")
	}
	fs.SetFailAfter(-1)

	// The next append must rotate to a fresh segment and keep going.
	acked = append(acked, appendN(t, w, 6, 4)...)
	if w.SegmentCount() < 2 {
		t.Fatalf("expected rotation after abandoned segment, got %d", w.SegmentCount())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Replay: the first segment's damaged tail is excused because its
	// successor continues the sequence exactly; every acked record survives.
	_, got, err := OpenWAL(fs, "wal", WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wantRecords(t, got, acked)
}

func TestWALTruncateTo(t *testing.T) {
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{SegmentBytes: 256})
	acked := appendN(t, w, 0, 40)
	before := w.SegmentCount()
	if before < 3 {
		t.Fatalf("want ≥3 segments, got %d", before)
	}
	watermark := acked[20].Seq
	if err := w.TruncateTo(watermark); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if after := w.SegmentCount(); after >= before {
		t.Fatalf("truncation removed nothing: %d → %d segments", before, after)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, got, err := OpenWAL(fs, "wal", WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(got) == 0 {
		t.Fatalf("truncation dropped the whole log")
	}
	// Everything past the watermark must survive; the surviving records are
	// a contiguous suffix of the acked stream.
	first := got[0].Seq
	for _, r := range acked {
		if r.Seq > watermark {
			if first > r.Seq {
				t.Fatalf("record %d (past watermark %d) lost by truncation", r.Seq, watermark)
			}
			break
		}
	}
	wantRecords(t, got, acked[first-acked[0].Seq:])
}

func TestWALFullyTruncatedLogContinuesSequence(t *testing.T) {
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{})
	acked := appendN(t, w, 0, 8)
	last := acked[len(acked)-1].Seq
	if err := w.TruncateTo(last); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	more := appendN(t, w, 8, 3)
	if more[0].Seq != last+1 {
		t.Fatalf("append after full truncation got seq %d, want %d", more[0].Seq, last+1)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, got, err := OpenWAL(fs, "wal", WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	wantRecords(t, got, more)
}

func TestWALRejectsOversizeAndEmptyEntity(t *testing.T) {
	fs := NewMemFS()
	w, _ := mustOpenWAL(t, fs, WALOptions{})
	if _, err := w.Append("", "review"); err == nil {
		t.Fatalf("append accepted an empty entity ID")
	}
	big := make([]byte, maxRecordSize)
	if _, err := w.Append("e1", string(big)); err == nil {
		t.Fatalf("append accepted an oversized record")
	}
	if _, err := w.Append("e1", "normal"); err != nil {
		t.Fatalf("normal append after rejections: %v", err)
	}
}
