package datasets

import (
	"testing"

	"saccs/internal/tokenize"
)

func TestTable3SizesAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in -short mode")
	}
	want := []struct {
		name         string
		train, test  int
		totalInPaper int
	}{
		{"S1", 3041, 800, 3841},
		{"S2", 3045, 800, 3845},
		{"S3", 1315, 685, 2000},
		{"S4", 800, 112, 912},
	}
	ds := All(Paper)
	for i, w := range want {
		d := ds[i]
		if d.Name != w.name {
			t.Fatalf("dataset %d name %s", i, d.Name)
		}
		if len(d.Train) != w.train || len(d.Test) != w.test {
			t.Fatalf("%s split %d/%d, want %d/%d", d.Name, len(d.Train), len(d.Test), w.train, w.test)
		}
		if d.Total() != w.totalInPaper {
			t.Fatalf("%s total %d, want %d", d.Name, d.Total(), w.totalInPaper)
		}
	}
}

func TestFastScaleNonTrivial(t *testing.T) {
	for _, d := range All(Fast) {
		if len(d.Train) < 12 || len(d.Test) < 12 {
			t.Fatalf("%s too small at fast scale: %d/%d", d.Name, len(d.Train), len(d.Test))
		}
		if len(d.Train) > 400 {
			t.Fatalf("%s too large at fast scale: %d", d.Name, len(d.Train))
		}
	}
}

func TestDatasetExamplesWellFormed(t *testing.T) {
	for _, d := range All(Fast) {
		for _, ex := range append(append([]Example{}, d.Train...), d.Test...) {
			if len(ex.Tokens) != len(ex.Labels) {
				t.Fatalf("%s: token/label mismatch", d.Name)
			}
			if len(ex.Tokens) == 0 {
				t.Fatalf("%s: empty example", d.Name)
			}
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := S1(Fast), S1(Fast)
	for i := range a.Train {
		if len(a.Train[i].Tokens) != len(b.Train[i].Tokens) {
			t.Fatal("non-deterministic generation")
		}
		for j := range a.Train[i].Tokens {
			if a.Train[i].Tokens[j] != b.Train[i].Tokens[j] {
				t.Fatal("non-deterministic tokens")
			}
		}
	}
}

func TestBuildVocabCoversDataset(t *testing.T) {
	d := S1(Fast)
	v := BuildVocab(d.Domain, d.Train, d.Test)
	unk := v.ID(tokenize.UnkToken)
	for _, ex := range d.Train {
		for _, tok := range ex.Tokens {
			if v.ID(tok) == unk && tok != tokenize.UnkToken {
				t.Fatalf("token %q not covered by vocab", tok)
			}
		}
	}
	if !v.Has("delicious") || !v.Has("the") {
		t.Fatal("vocab missing lexicon/function words")
	}
}

func TestPairingBenchmarkShape(t *testing.T) {
	train, test := PairingBenchmark(Fast)
	if len(train) == 0 {
		t.Fatal("no training sentences")
	}
	if len(test) != 60 {
		t.Fatalf("fast test size %d", len(test))
	}
	pos := 0
	for _, ex := range test {
		if ex.Label {
			pos++
		}
		if len(ex.Tokens) == 0 || ex.Phrase == "" {
			t.Fatal("malformed example")
		}
		if ex.Aspect.Kind != tokenize.AspectSpan || ex.Opinion.Kind != tokenize.OpinionSpan {
			t.Fatal("span kinds wrong")
		}
	}
	// "fairly equal amount of positive and negative examples" (§6.4).
	if pos < len(test)/4 || pos > 3*len(test)/4 {
		t.Fatalf("unbalanced test set: %d/%d positive", pos, len(test))
	}
}

func TestPairingBenchmarkPaperSize(t *testing.T) {
	if testing.Short() {
		t.Skip("paper scale in -short mode")
	}
	_, test := PairingBenchmark(Paper)
	if len(test) != 397 {
		t.Fatalf("paper test size %d, want 397 (§6.4)", len(test))
	}
}

func TestEnumeratePairsLabelsGold(t *testing.T) {
	train, _ := PairingBenchmark(Fast)
	checked := 0
	for _, sent := range train {
		exs := EnumeratePairs(sent)
		goldCount := 0
		for _, ex := range exs {
			if ex.Label {
				goldCount++
			}
		}
		if len(sent.Pairs) > 0 && goldCount == 0 {
			t.Fatalf("gold pairs not recovered: %v vs %d examples", sent.Pairs, len(exs))
		}
		checked++
		if checked > 50 {
			break
		}
	}
}
