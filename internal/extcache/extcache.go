// Package extcache caches neural extraction results. Tagging a sentence is
// the most expensive step of the pipeline — a full MiniBERT + BiLSTM + CRF
// forward pass — yet conversational query streams and index builds present
// the same token sequences over and over (repeated utterances, slot-filled
// context rewrites, duplicated review sentences). The cache maps a
// normalized token sequence to its extracted subjective tags so repeats skip
// the network entirely.
//
// Correctness rests on generation keying: every entry is stored under the
// tagger's weight generation (see tagger.Model.Generation), and a lookup
// hits only when the stored generation equals the caller's. Retraining or
// swapping a model bumps the generation, so stale weights can never serve a
// cached result — no flush coordination needed, old entries simply stop
// matching and age out through eviction.
//
// The layout follows sim.Memo: 16 independently locked shards so concurrent
// queries and parallel index builds do not serialize on one mutex, a hard
// per-shard capacity, and wholesale shard eviction (cheap amortized O(1),
// no LRU bookkeeping). All methods are safe for concurrent use.
package extcache

import (
	"sync"
	"sync/atomic"

	"saccs/internal/obs"
)

// shardCount is the number of independently locked cache segments.
const shardCount = 16

// entry is one cached extraction: the tags produced for a token sequence by
// the weights of one generation. nil tags are a valid (and common) result —
// most sentences contain no subjective phrase — so presence in the map, not
// tag count, is the hit signal.
type entry struct {
	gen  uint64
	tags []string
}

type shard struct {
	mu sync.Mutex
	m  map[string]entry
}

// Cache is a bounded, sharded, generation-keyed extraction cache.
type Cache struct {
	cap    int // per shard
	shards [shardCount]shard

	hits, misses, evictions atomic.Int64

	// optional metrics (nil-safe): extract.cache.{hit,miss,eviction}.total
	// counters and the extract.cache.hit_ratio gauge.
	hitCtr, missCtr, evictCtr *obs.Counter
	ratio                     *obs.Gauge
}

// New returns a cache bounded to roughly size entries, spread over the
// shards (minimum one entry per shard). A size of 0 or less returns nil —
// and a nil *Cache is valid: every method no-ops, so callers need no
// enabled/disabled branches.
func New(size int) *Cache {
	if size <= 0 {
		return nil
	}
	perShard := (size + shardCount - 1) / shardCount
	if perShard < 1 {
		perShard = 1
	}
	return &Cache{cap: perShard}
}

// SetObserver attaches hit/miss/eviction counters and the hit-ratio gauge.
// Call before concurrent use; a nil observer detaches them.
func (c *Cache) SetObserver(o *obs.Observer) {
	if c == nil {
		return
	}
	if o == nil {
		c.hitCtr, c.missCtr, c.evictCtr, c.ratio = nil, nil, nil, nil
		return
	}
	c.hitCtr = o.Counter("extract.cache.hit.total")
	c.missCtr = o.Counter("extract.cache.miss.total")
	c.evictCtr = o.Counter("extract.cache.eviction.total")
	c.ratio = o.Gauge("extract.cache.hit_ratio")
}

// Stats returns lifetime hits, misses, and whole-shard evictions.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// Len returns the number of live entries (any generation).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	var n int
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// fnv32a over the key selects a shard.
func shardOf(key string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % shardCount
}

// Get returns the cached tags for key computed under exactly generation gen.
// An entry stored under any other generation is a miss (the stale entry is
// left for eviction to reclaim). The returned slice is a copy — callers may
// append to or reorder it freely.
func (c *Cache) Get(gen uint64, key string) ([]string, bool) {
	if c == nil {
		return nil, false
	}
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok || e.gen != gen {
		c.misses.Add(1)
		c.missCtr.Inc()
		c.observeRatio()
		return nil, false
	}
	c.hits.Add(1)
	c.hitCtr.Inc()
	c.observeRatio()
	if e.tags == nil {
		return nil, true
	}
	out := make([]string, len(e.tags))
	copy(out, e.tags)
	return out, true
}

// Put stores tags for key under generation gen, overwriting any entry from
// an older generation. The tags are copied in, so the caller keeps ownership
// of its slice. A full shard is cleared wholesale before the insert.
func (c *Cache) Put(gen uint64, key string, tags []string) {
	if c == nil {
		return
	}
	var stored []string
	if tags != nil {
		stored = make([]string, len(tags))
		copy(stored, tags)
	}
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]entry, c.cap)
	}
	if _, existed := sh.m[key]; !existed && len(sh.m) >= c.cap {
		sh.m = make(map[string]entry, c.cap)
		c.evictions.Add(1)
		c.evictCtr.Inc()
	}
	sh.m[key] = entry{gen: gen, tags: stored}
	sh.mu.Unlock()
}

// observeRatio publishes the lifetime hit ratio to the gauge, when attached.
func (c *Cache) observeRatio() {
	if c.ratio == nil {
		return
	}
	h := c.hits.Load()
	total := h + c.misses.Load()
	if total > 0 {
		c.ratio.Set(float64(h) / float64(total))
	}
}
