package extcache

import (
	"fmt"
	"sync"
	"testing"

	"saccs/internal/obs"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(64)
	if _, ok := c.Get(1, "k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "k", []string{"tasty food", "friendly staff"})
	got, ok := c.Get(1, "k")
	if !ok {
		t.Fatal("miss after Put")
	}
	if len(got) != 2 || got[0] != "tasty food" || got[1] != "friendly staff" {
		t.Fatalf("got %v", got)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestGenerationMismatchMisses(t *testing.T) {
	c := New(64)
	c.Put(1, "k", []string{"a"})
	if _, ok := c.Get(2, "k"); ok {
		t.Fatal("entry from generation 1 served to generation 2")
	}
	// A fresh Put under the new generation replaces the stale entry.
	c.Put(2, "k", []string{"b"})
	got, ok := c.Get(2, "k")
	if !ok || len(got) != 1 || got[0] != "b" {
		t.Fatalf("got %v, %v", got, ok)
	}
}

func TestNilTagsAreAHit(t *testing.T) {
	c := New(64)
	c.Put(1, "no subjective phrases here", nil)
	got, ok := c.Get(1, "no subjective phrases here")
	if !ok {
		t.Fatal("cached nil extraction should hit")
	}
	if got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

func TestReturnedSliceIsACopy(t *testing.T) {
	c := New(64)
	in := []string{"a", "b"}
	c.Put(1, "k", in)
	in[0] = "mutated"
	got, _ := c.Get(1, "k")
	if got[0] != "a" {
		t.Fatal("Put did not copy the caller's slice")
	}
	got[1] = "mutated"
	got2, _ := c.Get(1, "k")
	if got2[1] != "b" {
		t.Fatal("Get did not copy the stored slice")
	}
}

func TestEvictionBoundsSize(t *testing.T) {
	c := New(32) // 2 per shard
	for i := 0; i < 10_000; i++ {
		c.Put(1, fmt.Sprintf("key-%d", i), []string{"t"})
	}
	if n := c.Len(); n > 32+shardCount {
		t.Fatalf("cache grew to %d entries despite capacity 32", n)
	}
	_, _, evictions := c.Stats()
	if evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestNilCacheNoOps(t *testing.T) {
	var c *Cache
	c.Put(1, "k", []string{"a"})
	if _, ok := c.Get(1, "k"); ok {
		t.Fatal("nil cache hit")
	}
	c.SetObserver(nil)
	// Get on a nil cache records nothing; Stats must be all-zero.
	if h, m, e := c.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("nil cache stats = (%d, %d, %d)", h, m, e)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}

func TestObserverCountersAndRatio(t *testing.T) {
	c := New(64)
	o := obs.NewObserver()
	c.SetObserver(o)
	c.Put(3, "k", []string{"a"})
	c.Get(3, "k")     // hit
	c.Get(3, "other") // miss
	snap := o.Metrics.Snapshot()
	if snap.Counters["extract.cache.hit.total"] != 1 {
		t.Fatalf("hit counter = %d", snap.Counters["extract.cache.hit.total"])
	}
	if snap.Counters["extract.cache.miss.total"] != 1 {
		t.Fatalf("miss counter = %d", snap.Counters["extract.cache.miss.total"])
	}
	if r := snap.Gauges["extract.cache.hit_ratio"]; r != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("key-%d", i%97)
				gen := uint64(1 + i%3)
				if tags, ok := c.Get(gen, key); ok && len(tags) != 1 {
					t.Errorf("corrupt entry for %s: %v", key, tags)
					return
				}
				c.Put(gen, key, []string{key})
			}
		}(g)
	}
	wg.Wait()
}
