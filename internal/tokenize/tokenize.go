// Package tokenize supplies the text preprocessing substrate for SACCS:
// word tokenization, sentence splitting, a vocabulary with the special tokens
// the MiniBERT encoder expects, and the IOB label codec of the tagging task
// (§4 of the paper, Ramshaw & Marcus chunk encoding).
package tokenize

import (
	"strings"
	"unicode"
)

// Words splits s into lowercase word tokens. Punctuation characters become
// their own tokens so sentence structure survives for the parser; apostrophes
// inside words are kept (e.g. "kazuki's").
func Words(s string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'' && b.Len() > 0 && i+1 < len(runes) && unicode.IsLetter(runes[i+1]):
			b.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			// Cased symbols (e.g. circled letters, category So) land here
			// because they are not unicode letters, yet still have lowercase
			// mappings — fold them so every emitted rune is a lowercase fixed
			// point. For ordinary punctuation ToLower is the identity.
			flush()
			toks = append(toks, string(unicode.ToLower(r)))
		}
	}
	flush()
	return toks
}

// Sentences splits text into sentences on ., !, ? boundaries. The terminator
// stays attached to its sentence. Whitespace-only segments are dropped.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	for _, r := range text {
		b.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			if s := strings.TrimSpace(b.String()); s != "" {
				out = append(out, s)
			}
			b.Reset()
		}
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// Special vocabulary tokens used by the MiniBERT encoder and the datasets.
const (
	PadToken  = "[PAD]"
	UnkToken  = "[UNK]"
	ClsToken  = "[CLS]"
	SepToken  = "[SEP]"
	MaskToken = "[MASK]"
)

// Vocab maps tokens to dense integer ids. The zero id is always [PAD].
type Vocab struct {
	ids    map[string]int
	tokens []string
}

// NewVocab returns a vocabulary pre-seeded with the special tokens
// ([PAD]=0, [UNK]=1, [CLS]=2, [SEP]=3, [MASK]=4).
func NewVocab() *Vocab {
	v := &Vocab{ids: make(map[string]int)}
	for _, t := range []string{PadToken, UnkToken, ClsToken, SepToken, MaskToken} {
		v.Add(t)
	}
	return v
}

// Add inserts token and returns its id; existing tokens keep their id.
func (v *Vocab) Add(token string) int {
	if id, ok := v.ids[token]; ok {
		return id
	}
	id := len(v.tokens)
	v.ids[token] = id
	v.tokens = append(v.tokens, token)
	return id
}

// ID returns token's id, or the [UNK] id when unknown.
func (v *Vocab) ID(token string) int {
	if id, ok := v.ids[token]; ok {
		return id
	}
	return v.ids[UnkToken]
}

// Has reports whether token is in the vocabulary.
func (v *Vocab) Has(token string) bool {
	_, ok := v.ids[token]
	return ok
}

// Token returns the token for id, or [UNK] when out of range.
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.tokens) {
		return UnkToken
	}
	return v.tokens[id]
}

// Len returns the vocabulary size.
func (v *Vocab) Len() int { return len(v.tokens) }

// Encode maps tokens to ids, using [UNK] for out-of-vocabulary tokens.
func (v *Vocab) Encode(tokens []string) []int {
	ids := make([]int, len(tokens))
	for i, t := range tokens {
		ids[i] = v.ID(t)
	}
	return ids
}

// AddAll inserts every token and returns v for chaining.
func (v *Vocab) AddAll(tokens []string) *Vocab {
	for _, t := range tokens {
		v.Add(t)
	}
	return v
}
