package tokenize

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzWords fuzzes the word tokenizer. Invariants: no empty tokens, no
// whitespace inside a token, every token rune is a lowercase fixed point
// (ToLower(r) == r), apostrophes only appear inside word tokens, and
// tokenization is idempotent — re-tokenizing the space-joined token stream
// reproduces it exactly.
func FuzzWords(f *testing.F) {
	f.Add("The food is delicious and the staff is friendly.")
	f.Add("kazuki's pizza!!! 100% great, isn't it?")
	f.Add("  \t\n ")
	f.Add("l'école — déjà vu… naïve café")
	f.Add("don't stop'n'go '''")
	f.Add("日本語のレビュー with mixed ASCII 42")
	f.Add("a'b'c''d '")
	f.Fuzz(func(t *testing.T, s string) {
		toks := Words(s)
		for i, tok := range toks {
			if tok == "" {
				t.Fatalf("empty token at %d for input %q", i, s)
			}
			for _, r := range tok {
				if unicode.IsSpace(r) {
					t.Fatalf("whitespace inside token %q for input %q", tok, s)
				}
				if unicode.ToLower(r) != r {
					t.Fatalf("non-lowercased rune %q in token %q for input %q", r, tok, s)
				}
			}
			if strings.HasPrefix(tok, "'") && len([]rune(tok)) > 1 {
				t.Fatalf("word token %q starts with apostrophe for input %q", tok, s)
			}
			if strings.HasSuffix(tok, "'") && len([]rune(tok)) > 1 {
				t.Fatalf("word token %q ends with apostrophe for input %q", tok, s)
			}
		}
		again := Words(strings.Join(toks, " "))
		if len(again) != len(toks) {
			t.Fatalf("tokenization not idempotent for %q: %d tokens, then %d", s, len(toks), len(again))
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("tokenization not idempotent for %q: token %d %q became %q", s, i, toks[i], again[i])
			}
		}
	})
}

// FuzzSentences fuzzes the sentence splitter. Invariants: no empty or
// whitespace-only sentences, no sentence starts or ends with space, and the
// concatenated sentences preserve every non-space rune of the input in order.
func FuzzSentences(f *testing.F) {
	f.Add("The food is great. The staff? Rude! No dessert")
	f.Add("...")
	f.Add(" leading space. trailing space ")
	f.Add("one\nsentence\nacross\nlines!")
	f.Add("no terminator at all")
	f.Fuzz(func(t *testing.T, s string) {
		sents := Sentences(s)
		var got []rune
		for _, sent := range sents {
			if strings.TrimSpace(sent) == "" {
				t.Fatalf("blank sentence for input %q", s)
			}
			if sent != strings.TrimSpace(sent) {
				t.Fatalf("untrimmed sentence %q for input %q", sent, s)
			}
			for _, r := range sent {
				if !unicode.IsSpace(r) {
					got = append(got, r)
				}
			}
		}
		var want []rune
		for _, r := range s {
			if !unicode.IsSpace(r) {
				want = append(want, r)
			}
		}
		if string(want) != string(got) {
			t.Fatalf("non-space runes not preserved for %q: want %q, got %q", s, string(want), string(got))
		}
	})
}
