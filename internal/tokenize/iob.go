package tokenize

import "fmt"

// Label is one of the five IOB classes of the SACCS tagging task (§4):
// L = {B-AS, I-AS, B-OP, I-OP, O}.
type Label uint8

// The label set, in the fixed order used by the CRF transition matrix.
const (
	O Label = iota // outside any aspect or opinion span
	BAS
	IAS
	BOP
	IOP
	NumLabels = 5
)

// String returns the canonical IOB name of l.
func (l Label) String() string {
	switch l {
	case O:
		return "O"
	case BAS:
		return "B-AS"
	case IAS:
		return "I-AS"
	case BOP:
		return "B-OP"
	case IOP:
		return "I-OP"
	}
	return fmt.Sprintf("Label(%d)", uint8(l))
}

// ParseLabel converts an IOB name to a Label.
func ParseLabel(s string) (Label, error) {
	switch s {
	case "O":
		return O, nil
	case "B-AS":
		return BAS, nil
	case "I-AS":
		return IAS, nil
	case "B-OP":
		return BOP, nil
	case "I-OP":
		return IOP, nil
	}
	return O, fmt.Errorf("tokenize: unknown IOB label %q", s)
}

// ValidTransition reports whether label b may follow label a in a well-formed
// IOB sequence: I-AS must follow B-AS or I-AS, and I-OP must follow B-OP or
// I-OP (the dependency the CRF layer is there to learn, §4.1).
func ValidTransition(a, b Label) bool {
	switch b {
	case IAS:
		return a == BAS || a == IAS
	case IOP:
		return a == BOP || a == IOP
	}
	return true
}

// ValidStart reports whether a well-formed sequence may begin with l.
func ValidStart(l Label) bool { return l != IAS && l != IOP }

// SpanKind distinguishes aspect from opinion chunks.
type SpanKind uint8

// Chunk kinds extracted from an IOB sequence.
const (
	AspectSpan SpanKind = iota
	OpinionSpan
)

func (k SpanKind) String() string {
	if k == AspectSpan {
		return "AS"
	}
	return "OP"
}

// Span is a half-open token range [Start, End) labeled as an aspect or
// opinion term. A multi-word span is a single term (§5 footnote 3).
type Span struct {
	Kind       SpanKind
	Start, End int
}

// Len returns the number of tokens covered by s.
func (s Span) Len() int { return s.End - s.Start }

// Text joins the covered tokens with spaces.
func (s Span) Text(tokens []string) string {
	out := ""
	for i := s.Start; i < s.End && i < len(tokens); i++ {
		if out != "" {
			out += " "
		}
		out += tokens[i]
	}
	return out
}

// Spans decodes an IOB label sequence into aspect and opinion chunks.
// A stray I-AS/I-OP that does not continue a chunk of the same kind starts a
// new chunk (conventional lenient decoding, so model output is always usable).
func Spans(labels []Label) []Span {
	var spans []Span
	var cur *Span
	close := func() {
		if cur != nil {
			spans = append(spans, *cur)
			cur = nil
		}
	}
	for i, l := range labels {
		switch l {
		case BAS:
			close()
			cur = &Span{Kind: AspectSpan, Start: i, End: i + 1}
		case BOP:
			close()
			cur = &Span{Kind: OpinionSpan, Start: i, End: i + 1}
		case IAS:
			if cur != nil && cur.Kind == AspectSpan && cur.End == i {
				cur.End = i + 1
			} else {
				close()
				cur = &Span{Kind: AspectSpan, Start: i, End: i + 1}
			}
		case IOP:
			if cur != nil && cur.Kind == OpinionSpan && cur.End == i {
				cur.End = i + 1
			} else {
				close()
				cur = &Span{Kind: OpinionSpan, Start: i, End: i + 1}
			}
		default:
			close()
		}
	}
	close()
	return spans
}

// LabelsFromSpans builds an IOB sequence of length n from chunks. Overlapping
// spans are applied in order, later spans overwriting earlier ones.
func LabelsFromSpans(n int, spans []Span) []Label {
	labels := make([]Label, n)
	for _, sp := range spans {
		b, i := BAS, IAS
		if sp.Kind == OpinionSpan {
			b, i = BOP, IOP
		}
		for t := sp.Start; t < sp.End && t < n; t++ {
			if t == sp.Start {
				labels[t] = b
			} else {
				labels[t] = i
			}
		}
	}
	return labels
}
