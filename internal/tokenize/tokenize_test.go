package tokenize

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"The food is delicious!", []string{"the", "food", "is", "delicious", "!"}},
		{"Vue du Monde", []string{"vue", "du", "monde"}},
		{"Kazuki's place", []string{"kazuki's", "place"}},
		{"a, b", []string{"a", ",", "b"}},
		{"", nil},
		{"   ", nil},
		{"don't stop", []string{"don't", "stop"}},
		{"it's 5 stars", []string{"it's", "5", "stars"}},
		{"end.'", []string{"end", ".", "'"}},
	}
	for _, c := range cases {
		if got := Words(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("The staff is friendly. The decor is beautiful! Is it open?")
	want := []string{"The staff is friendly.", "The decor is beautiful!", "Is it open?"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sentences: got %v", got)
	}
	if got := Sentences("no terminator"); len(got) != 1 || got[0] != "no terminator" {
		t.Fatalf("trailing sentence: got %v", got)
	}
	if got := Sentences(""); got != nil {
		t.Fatalf("empty: got %v", got)
	}
}

func TestVocabSpecials(t *testing.T) {
	v := NewVocab()
	if v.ID(PadToken) != 0 {
		t.Fatal("[PAD] must be id 0")
	}
	if v.ID(UnkToken) != 1 {
		t.Fatal("[UNK] must be id 1")
	}
	if v.ID("never-seen") != 1 {
		t.Fatal("unknown token must map to [UNK]")
	}
	if v.Len() != 5 {
		t.Fatalf("fresh vocab size = %d", v.Len())
	}
}

func TestVocabRoundTrip(t *testing.T) {
	v := NewVocab()
	words := []string{"food", "staff", "delicious"}
	v.AddAll(words)
	for _, w := range words {
		if v.Token(v.ID(w)) != w {
			t.Fatalf("round trip failed for %q", w)
		}
	}
	// Adding twice keeps the same id.
	id := v.Add("food")
	if id2 := v.Add("food"); id2 != id {
		t.Fatal("Add must be idempotent")
	}
	ids := v.Encode([]string{"food", "zzz"})
	if ids[0] != v.ID("food") || ids[1] != v.ID(UnkToken) {
		t.Fatalf("Encode: got %v", ids)
	}
	if v.Token(-1) != UnkToken || v.Token(9999) != UnkToken {
		t.Fatal("out-of-range Token must be [UNK]")
	}
}

func TestLabelStringRoundTrip(t *testing.T) {
	for _, l := range []Label{O, BAS, IAS, BOP, IOP} {
		got, err := ParseLabel(l.String())
		if err != nil || got != l {
			t.Fatalf("round trip %v failed: %v %v", l, got, err)
		}
	}
	if _, err := ParseLabel("B-XX"); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

func TestValidTransition(t *testing.T) {
	// I-AS must follow B-AS or I-AS (§4.1).
	if ValidTransition(O, IAS) || ValidTransition(BOP, IAS) || ValidTransition(IOP, IAS) {
		t.Fatal("I-AS may only follow B-AS/I-AS")
	}
	if !ValidTransition(BAS, IAS) || !ValidTransition(IAS, IAS) {
		t.Fatal("I-AS must be allowed after B-AS/I-AS")
	}
	if ValidTransition(BAS, IOP) {
		t.Fatal("I-OP may not follow B-AS")
	}
	if !ValidTransition(O, BAS) || !ValidTransition(IOP, O) {
		t.Fatal("B-*/O transitions must be free")
	}
	if ValidStart(IAS) || ValidStart(IOP) || !ValidStart(O) || !ValidStart(BAS) {
		t.Fatal("ValidStart wrong")
	}
}

func TestSpansDecoding(t *testing.T) {
	labels := []Label{O, BAS, IAS, O, BOP, O, BAS, BOP, IOP}
	spans := Spans(labels)
	want := []Span{
		{AspectSpan, 1, 3},
		{OpinionSpan, 4, 5},
		{AspectSpan, 6, 7},
		{OpinionSpan, 7, 9},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("Spans: got %v, want %v", spans, want)
	}
}

func TestSpansLenientOnStrayI(t *testing.T) {
	// I-AS with no preceding B-AS should still open a chunk.
	spans := Spans([]Label{IAS, IAS, O, IOP})
	want := []Span{{AspectSpan, 0, 2}, {OpinionSpan, 3, 4}}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("lenient Spans: got %v", spans)
	}
	// Kind switch without B should split chunks.
	spans = Spans([]Label{BAS, IOP})
	want = []Span{{AspectSpan, 0, 1}, {OpinionSpan, 1, 2}}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("kind-switch Spans: got %v", spans)
	}
}

func TestSpanText(t *testing.T) {
	toks := []string{"the", "creative", "cooking", "rocks"}
	sp := Span{AspectSpan, 1, 3}
	if got := sp.Text(toks); got != "creative cooking" {
		t.Fatalf("Text: got %q", got)
	}
	if (Span{AspectSpan, 3, 10}).Text(toks) != "rocks" {
		t.Fatal("Text must clamp to token slice")
	}
}

func TestLabelsFromSpansRoundTrip(t *testing.T) {
	// Property: for well-formed random span sets, Spans(LabelsFromSpans(..)) == spans.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(15)
		var spans []Span
		pos := 0
		for pos < n-2 {
			gap := rng.Intn(3) // >=0 gap; adjacent same-kind spans would merge, so force gap>=1 after first
			if len(spans) > 0 && gap == 0 {
				gap = 1
			}
			start := pos + gap
			ln := 1 + rng.Intn(3)
			if start+ln > n {
				break
			}
			kind := AspectSpan
			if rng.Intn(2) == 1 {
				kind = OpinionSpan
			}
			// adjacent same-kind spans are indistinguishable only if I follows;
			// B- labels restart chunks so adjacency is fine. But zero-gap same
			// kind yields B,B which decodes into two spans — OK.
			spans = append(spans, Span{kind, start, start + ln})
			pos = start + ln
		}
		labels := LabelsFromSpans(n, spans)
		got := Spans(labels)
		if len(spans) == 0 {
			if len(got) != 0 {
				t.Fatalf("expected no spans, got %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, spans) {
			t.Fatalf("round trip failed: want %v, got %v (labels %v)", spans, got, labels)
		}
	}
}

func TestWordsNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Words(s) {
			if tok == "" || strings.ContainsAny(tok, " \t\n") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSentencesCoverInput(t *testing.T) {
	// Property: rejoining sentences preserves all non-space characters in order.
	f := func(s string) bool {
		joined := strings.Join(Sentences(s), "")
		strip := func(x string) string {
			return strings.Map(func(r rune) rune {
				if unicode.IsSpace(r) {
					return -1
				}
				return r
			}, x)
		}
		return strip(joined) == strip(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
