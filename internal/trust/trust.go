// Package trust implements the second future-work item of §7: robustness to
// "biased or fraudulent online reviews ... a reviewer might have been paid
// by a business owner to write positive reviews about it, or negative
// reviews about its competitors". The detector scores each review's
// consistency against the per-entity, per-aspect consensus of the other
// reviews; outlier reviews (uniformly glowing or uniformly hostile against
// a mixed consensus) are downweighted before indexing.
package trust

import (
	"math"

	"saccs/internal/lexicon"
	"saccs/internal/sim"
)

// ReviewSignals is the polarity evidence extracted from one review: for each
// aspect concept mentioned, +1 (positive opinion) or −1 (negative).
type ReviewSignals struct {
	// ReviewID is any caller-side identifier (index, hash, ...).
	ReviewID string
	// AspectPolarity maps a canonical aspect concept to the review's net
	// polarity on it (+n / −n for n mentions).
	AspectPolarity map[string]int
}

// SignalsFromTags derives ReviewSignals from a review's extracted subjective
// tags using the polarity lexicon and the taxonomy's canonical aspects.
func SignalsFromTags(id string, tags []string) ReviewSignals {
	c := sharedConceptual()
	tax := sharedTaxonomy()
	sig := ReviewSignals{ReviewID: id, AspectPolarity: map[string]int{}}
	for _, tag := range tags {
		pol := c.Polarity(tag)
		if pol == 0 {
			continue
		}
		asp := canonicalAspect(tax, tag)
		if asp == "" {
			continue
		}
		sig.AspectPolarity[asp] += pol
	}
	return sig
}

// canonicalAspect returns the first word of the tag whose taxonomy chain
// passes through a coarse aspect category, lifted to its canonical concept.
func canonicalAspect(tax *lexicon.Taxonomy, tag string) string {
	for _, w := range fields(tag) {
		anc := tax.Ancestors(w)
		for i, a := range anc {
			switch a {
			case "offering", "people", "place", "value", "facility", "hardware":
				if i > 0 {
					return anc[i-1] // the concept directly under the category
				}
				return w
			}
		}
	}
	return ""
}

// Report grades one review against its entity's consensus.
type Report struct {
	ReviewID string
	// Agreement ∈ [-1, 1]: mean sign-agreement with the per-aspect consensus
	// of the entity's other reviews (1 = always agrees).
	Agreement float64
	// Weight ∈ [0, 1]: suggested indexing weight (1 = fully trusted).
	Weight float64
	// Suspicious flags reviews whose agreement falls below the threshold.
	Suspicious bool
}

// Detector scores review consistency.
type Detector struct {
	// MinAspects is the minimum judged aspects before a review can be
	// flagged (default 2 — one-aspect reviews carry too little evidence).
	MinAspects int
	// SuspicionThreshold flags reviews with agreement below it (default -0.25).
	SuspicionThreshold float64
}

// NewDetector returns a detector with the default thresholds.
func NewDetector() *Detector {
	return &Detector{MinAspects: 2, SuspicionThreshold: -0.25}
}

// Analyze grades every review of one entity against the leave-one-out
// consensus. Reviews that systematically contradict an otherwise consistent
// consensus get low weights; reviews on aspects nobody else discusses stay
// neutral.
func (d *Detector) Analyze(reviews []ReviewSignals) []Report {
	// Per-aspect polarity totals across all reviews.
	totals := map[string]int{}
	for _, r := range reviews {
		for asp, p := range r.AspectPolarity {
			totals[asp] += sign(p)
		}
	}
	out := make([]Report, len(reviews))
	for i, r := range reviews {
		var agree, judged float64
		for asp, p := range r.AspectPolarity {
			// Leave-one-out consensus sign.
			rest := totals[asp] - sign(p)
			if rest == 0 {
				continue // no outside opinion on this aspect
			}
			judged++
			if sign(p) == sign(rest) {
				agree++
			} else {
				agree--
			}
		}
		rep := Report{ReviewID: r.ReviewID, Agreement: 0, Weight: 1}
		if judged > 0 {
			rep.Agreement = agree / judged
		}
		if int(judged) >= d.MinAspects && rep.Agreement < d.SuspicionThreshold {
			rep.Suspicious = true
		}
		// Weight: full trust at agreement >= 0, fading to 0.2 at -1.
		rep.Weight = math.Max(0.2, 1+0.8*math.Min(0, rep.Agreement))
		out[i] = rep
	}
	return out
}

// FilterTags drops (probabilistically deterministic: fully drops) the tags
// of suspicious reviews and returns the surviving multiset — a drop-in
// preprocessing step before index.EntityReviews is built.
func (d *Detector) FilterTags(reviewTags map[string][]string) []string {
	sigs := make([]ReviewSignals, 0, len(reviewTags))
	ids := make([]string, 0, len(reviewTags))
	for id := range reviewTags {
		ids = append(ids, id)
	}
	// Deterministic order.
	sortStrings(ids)
	for _, id := range ids {
		sigs = append(sigs, SignalsFromTags(id, reviewTags[id]))
	}
	reports := d.Analyze(sigs)
	var out []string
	for i, id := range ids {
		if reports[i].Suspicious {
			continue
		}
		out = append(out, reviewTags[id]...)
	}
	return out
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func fields(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

var (
	cachedConceptual *sim.Conceptual
	cachedTaxonomy   *lexicon.Taxonomy
)

func sharedConceptual() *sim.Conceptual {
	if cachedConceptual == nil {
		cachedConceptual = sim.NewConceptual()
	}
	return cachedConceptual
}

func sharedTaxonomy() *lexicon.Taxonomy {
	if cachedTaxonomy == nil {
		cachedTaxonomy = lexicon.DefaultTaxonomy()
	}
	return cachedTaxonomy
}
