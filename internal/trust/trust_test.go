package trust

import "testing"

func TestSignalsFromTags(t *testing.T) {
	sig := SignalsFromTags("r1", []string{"delicious food", "rude staff"})
	if len(sig.AspectPolarity) != 2 {
		t.Fatalf("signals: %v", sig.AspectPolarity)
	}
	var sawPos, sawNeg bool
	for _, p := range sig.AspectPolarity {
		if p > 0 {
			sawPos = true
		}
		if p < 0 {
			sawNeg = true
		}
	}
	if !sawPos || !sawNeg {
		t.Fatalf("polarity extraction wrong: %v", sig.AspectPolarity)
	}
	// Neutral tags contribute nothing.
	none := SignalsFromTags("r2", []string{"the food"})
	if len(none.AspectPolarity) != 0 {
		t.Fatalf("neutral tags must not signal: %v", none.AspectPolarity)
	}
}

// shill fabricates review signals: honest reviews agree with polarity,
// the shill contradicts on every aspect.
func shillScenario() []ReviewSignals {
	honest := func(id string) ReviewSignals {
		return ReviewSignals{ReviewID: id, AspectPolarity: map[string]int{
			"food": 1, "staff": 1, "decor": -1,
		}}
	}
	shill := ReviewSignals{ReviewID: "shill", AspectPolarity: map[string]int{
		"food": -1, "staff": -1, "decor": 1,
	}}
	return []ReviewSignals{honest("a"), honest("b"), honest("c"), shill}
}

func TestDetectorFlagsShill(t *testing.T) {
	d := NewDetector()
	reports := d.Analyze(shillScenario())
	byID := map[string]Report{}
	for _, r := range reports {
		byID[r.ReviewID] = r
	}
	if !byID["shill"].Suspicious {
		t.Fatalf("shill not flagged: %+v", byID["shill"])
	}
	if byID["shill"].Weight >= byID["a"].Weight {
		t.Fatal("shill must be downweighted")
	}
	for _, id := range []string{"a", "b", "c"} {
		if byID[id].Suspicious {
			t.Fatalf("honest review %s flagged: %+v", id, byID[id])
		}
		if byID[id].Agreement <= 0 {
			t.Fatalf("honest agreement: %+v", byID[id])
		}
	}
}

func TestDetectorNeutralOnUniqueAspects(t *testing.T) {
	d := NewDetector()
	reports := d.Analyze([]ReviewSignals{
		{ReviewID: "solo", AspectPolarity: map[string]int{"wine": 1}},
		{ReviewID: "other", AspectPolarity: map[string]int{"food": 1}},
	})
	for _, r := range reports {
		if r.Suspicious || r.Weight != 1 {
			t.Fatalf("no-overlap reviews must stay trusted: %+v", r)
		}
	}
}

func TestDetectorMinAspects(t *testing.T) {
	// A single contradicted aspect is not enough evidence to flag.
	d := NewDetector()
	reports := d.Analyze([]ReviewSignals{
		{ReviewID: "a", AspectPolarity: map[string]int{"food": 1}},
		{ReviewID: "b", AspectPolarity: map[string]int{"food": 1}},
		{ReviewID: "c", AspectPolarity: map[string]int{"food": -1}},
	})
	for _, r := range reports {
		if r.ReviewID == "c" && r.Suspicious {
			t.Fatal("one disagreement must not flag a review")
		}
	}
}

func TestFilterTagsDropsSuspicious(t *testing.T) {
	d := NewDetector()
	reviewTags := map[string][]string{
		"a":     {"delicious food", "friendly staff"},
		"b":     {"tasty food", "nice staff"},
		"c":     {"good food", "helpful staff"},
		"shill": {"bland food", "rude staff"},
	}
	kept := d.FilterTags(reviewTags)
	for _, tag := range kept {
		if tag == "bland food" || tag == "rude staff" {
			t.Fatalf("shill tags survived: %v", kept)
		}
	}
	if len(kept) != 6 {
		t.Fatalf("honest tags must all survive: %v", kept)
	}
}
