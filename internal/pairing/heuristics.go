// Package pairing implements §5 of the paper: associating each extracted
// aspect term with its opinion term to form subjective tags.
//
//   - Two novel unsupervised heuristics (§5.1): parse-tree distance (run in
//     both directions, aspects→opinions and opinions→aspects) and BERT
//     attention heads (an aspect pairs with the opinion it attends to most,
//     Fig. 5). A word-distance heuristic is included as the ablation baseline
//     the paper criticizes.
//   - Seven labeling functions built from the heuristics (§5.2): two tree
//     LFs and five attention-head LFs, feeding the snorkel label models.
//   - A discriminative classifier (§5.2): a two-layer sigmoid network over
//     BERT encodings of the sentence and the candidate phrase, trained on
//     the data-programming labels.
package pairing

import (
	"math"

	"saccs/internal/bert"
	"saccs/internal/mat"
	"saccs/internal/parse"
	"saccs/internal/postag"
	"saccs/internal/snorkel"
	"saccs/internal/tokenize"
)

// Pair is one aspect↔opinion association proposed by a heuristic.
type Pair struct {
	Aspect, Opinion tokenize.Span
}

// Candidate is one pairing decision: does (Aspect, Opinion) form a correct
// subjective tag in this sentence? Aspects and Opinions carry every span the
// tagger extracted, because the heuristics reason over the full sentence.
type Candidate struct {
	Tokens   []string
	Aspects  []tokenize.Span
	Opinions []tokenize.Span
	Aspect   tokenize.Span
	Opinion  tokenize.Span
}

// Heuristic proposes pairs for a tagged sentence.
type Heuristic interface {
	Name() string
	Pairs(tokens []string, aspects, opinions []tokenize.Span) []Pair
}

// spanMid returns a span's central token index.
func spanMid(s tokenize.Span) float64 { return float64(s.Start+s.End-1) / 2 }

// WordDistance is the naive baseline of §5: pair each source span with the
// nearest target span by token distance. It is exactly the method the paper
// shows failing on "The staff is friendly, helpful and professional. The
// decor is beautiful".
type WordDistance struct {
	// FromOpinions pairs each opinion to its nearest aspect when true;
	// otherwise each aspect to its nearest opinion.
	FromOpinions bool
}

// Name identifies the heuristic.
func (w WordDistance) Name() string {
	if w.FromOpinions {
		return "word_dist_op"
	}
	return "word_dist_as"
}

// Pairs maps each source span to the closest target span.
func (w WordDistance) Pairs(tokens []string, aspects, opinions []tokenize.Span) []Pair {
	return greedyPairs(aspects, opinions, w.FromOpinions, func(a, o tokenize.Span) float64 {
		return math.Abs(spanMid(a) - spanMid(o))
	})
}

// Tree is the first novel heuristic of §5.1: pair spans by distance in the
// sentence's constituency parse tree, so aspects prefer opinions inside
// their own clause/subtree.
type Tree struct {
	Lex postag.Lexicon
	// FromOpinions runs the opinions→aspects direction.
	FromOpinions bool
}

// Name identifies the labeling function (§6.4's lf_tree_as / lf_tree_op).
func (t Tree) Name() string {
	if t.FromOpinions {
		return "lf_tree_op"
	}
	return "lf_tree_as"
}

// Pairs maps each source span to the target with the smallest tree distance,
// breaking ties by word distance.
func (t Tree) Pairs(tokens []string, aspects, opinions []tokenize.Span) []Pair {
	tree := parse.Build(t.Lex, tokens)
	return greedyPairs(aspects, opinions, t.FromOpinions, func(a, o tokenize.Span) float64 {
		d := float64(tree.Distance(int(spanMid(a)), int(spanMid(o))))
		return d*1000 + math.Abs(spanMid(a)-spanMid(o))
	})
}

// Attention is the second novel heuristic of §5.1: a trained BERT's
// attention head acts as a no-training-required pairing classifier — each
// aspect attends most to its rightful opinion (Fig. 5).
type Attention struct {
	Enc *bert.Model
	// Layer and Head select the attention matrix.
	Layer, Head int
	// Margin makes the head conservative: an aspect proposes a pair only
	// when its best opinion's attention beats the runner-up by this relative
	// margin. Conservative heads have the high-precision/low-recall profile
	// the paper reports for its labeling functions (§6.4). Zero disables.
	Margin float64
	// DisplayName, when set, overrides the generated lf_bert name — the
	// experiments use the paper's labels (lf_bert_7:10 etc.).
	DisplayName string
}

// Name identifies the labeling function.
func (a Attention) Name() string {
	if a.DisplayName != "" {
		return a.DisplayName
	}
	return lfBertName(a.Layer, a.Head)
}

func lfBertName(layer, head int) string {
	digits := func(n int) string {
		if n == 0 {
			return "0"
		}
		var b []byte
		for n > 0 {
			b = append([]byte{byte('0' + n%10)}, b...)
			n /= 10
		}
		return string(b)
	}
	return "lf_bert_" + digits(layer) + ":" + digits(head)
}

// Pairs maps each aspect to the opinion span holding the largest share of
// the aspect's attention mass.
func (a Attention) Pairs(tokens []string, aspects, opinions []tokenize.Span) []Pair {
	if len(aspects) == 0 || len(opinions) == 0 {
		return nil
	}
	a.Enc.EncodeTokens(tokens)
	attn := a.Enc.Attention(a.Layer, a.Head)
	if attn == nil {
		return nil
	}
	var out []Pair
	for _, asp := range aspects {
		best, bestScore := opinions[0], math.Inf(-1)
		second := math.Inf(-1)
		for _, op := range opinions {
			score := attentionMass(attn, asp, op)
			if score > bestScore {
				second = bestScore
				best, bestScore = op, score
			} else if score > second {
				second = score
			}
		}
		if a.Margin > 0 && len(opinions) > 1 && bestScore < second*(1+a.Margin) {
			continue // ambiguous head reading: propose nothing for this aspect
		}
		out = append(out, Pair{Aspect: asp, Opinion: best})
	}
	return out
}

// attentionMass averages, over the aspect's token rows, the attention
// falling on the opinion's token columns (normalized by opinion length so
// long spans don't win by size).
func attentionMass(attn []mat.Vec, asp, op tokenize.Span) float64 {
	n := len(attn)
	var total float64
	var rows int
	for i := asp.Start; i < asp.End && i < n; i++ {
		row := attn[i]
		var mass float64
		var cols int
		for j := op.Start; j < op.End && j < len(row); j++ {
			mass += row[j]
			cols++
		}
		if cols > 0 {
			total += mass / float64(cols)
			rows++
		}
	}
	if rows == 0 {
		return math.Inf(-1)
	}
	return total / float64(rows)
}

// greedyPairs maps each source span (aspects, or opinions when fromOpinions)
// to the target minimizing cost.
func greedyPairs(aspects, opinions []tokenize.Span, fromOpinions bool, cost func(a, o tokenize.Span) float64) []Pair {
	if len(aspects) == 0 || len(opinions) == 0 {
		return nil
	}
	var out []Pair
	if fromOpinions {
		for _, op := range opinions {
			best, bestCost := aspects[0], math.Inf(1)
			for _, asp := range aspects {
				if c := cost(asp, op); c < bestCost {
					best, bestCost = asp, c
				}
			}
			out = append(out, Pair{Aspect: best, Opinion: op})
		}
		return out
	}
	for _, asp := range aspects {
		best, bestCost := opinions[0], math.Inf(1)
		for _, op := range opinions {
			if c := cost(asp, op); c < bestCost {
				best, bestCost = op, c
			}
		}
		out = append(out, Pair{Aspect: asp, Opinion: best})
	}
	return out
}

// LFFromHeuristic wraps a heuristic as a snorkel labeling function with the
// §5.2 interface: vote Positive when the candidate pair belongs to the
// heuristic's proposed set, Negative otherwise.
func LFFromHeuristic(h Heuristic) snorkel.LF[Candidate] {
	return snorkel.LF[Candidate]{
		Name: h.Name(),
		Apply: func(c Candidate) snorkel.Vote {
			for _, p := range h.Pairs(c.Tokens, c.Aspects, c.Opinions) {
				if p.Aspect == c.Aspect && p.Opinion == c.Opinion {
					return snorkel.Positive
				}
			}
			return snorkel.Negative
		},
	}
}

// LFFromAspectHeuristic wraps an aspect-driven heuristic (each aspect picks
// at most one opinion, like the attention heads) with abstention semantics:
// Positive when the pair is proposed, Abstain otherwise. An aspect-driven
// heuristic choosing a different opinion is not evidence *against* the
// candidate — one aspect can legitimately pair with several opinions
// (footnote 4) — so these labeling functions only ever contribute positive
// evidence. Abstention is what lets weak-but-precise labeling functions help
// the label model instead of drowning it (Snorkel [48]).
func LFFromAspectHeuristic(h Heuristic) snorkel.LF[Candidate] {
	return snorkel.LF[Candidate]{
		Name: h.Name(),
		Apply: func(c Candidate) snorkel.Vote {
			for _, p := range h.Pairs(c.Tokens, c.Aspects, c.Opinions) {
				if p.Aspect == c.Aspect && p.Opinion == c.Opinion {
					return snorkel.Positive
				}
			}
			return snorkel.Abstain
		},
	}
}
