package pairing

import (
	"math/rand"
	"testing"

	"saccs/internal/bert"
	"saccs/internal/datasets"
	"saccs/internal/lexicon"
	"saccs/internal/metrics"
	"saccs/internal/parse"
	"saccs/internal/snorkel"
	"saccs/internal/tokenize"
)

// paperSentence builds the §5.1 example: "the staff is friendly, helpful and
// professional. the decor is beautiful." with gold spans.
func paperSentence() (tokens []string, aspects, opinions []tokenize.Span) {
	tokens = []string{"the", "staff", "is", "friendly", ",", "helpful", "and",
		"professional", ".", "the", "decor", "is", "beautiful", "."}
	aspects = []tokenize.Span{
		{Kind: tokenize.AspectSpan, Start: 1, End: 2},   // staff
		{Kind: tokenize.AspectSpan, Start: 10, End: 11}, // decor
	}
	opinions = []tokenize.Span{
		{Kind: tokenize.OpinionSpan, Start: 3, End: 4},   // friendly
		{Kind: tokenize.OpinionSpan, Start: 5, End: 6},   // helpful
		{Kind: tokenize.OpinionSpan, Start: 7, End: 8},   // professional
		{Kind: tokenize.OpinionSpan, Start: 12, End: 13}, // beautiful
	}
	return
}

func restLex() map[string]uint8 { return nil }

var _ = restLex

func TestWordDistanceFailsOnPaperExample(t *testing.T) {
	// §5: word distance wrongly pairs professional with decor.
	tokens, aspects, opinions := paperSentence()
	wd := WordDistance{FromOpinions: true}
	pairs := wd.Pairs(tokens, aspects, opinions)
	foundWrong := false
	for _, p := range pairs {
		if p.Opinion.Start == 7 && p.Aspect.Start == 10 {
			foundWrong = true // professional -> decor (the documented failure)
		}
	}
	if !foundWrong {
		t.Fatalf("word distance should exhibit the paper's failure mode: %v", pairs)
	}
}

func TestTreeHeuristicFixesPaperExample(t *testing.T) {
	tokens, aspects, opinions := paperSentence()
	lex := parse.DomainLexicon(lexicon.Restaurants())
	tr := Tree{Lex: lex, FromOpinions: true}
	pairs := tr.Pairs(tokens, aspects, opinions)
	for _, p := range pairs {
		if p.Opinion.Start == 7 && p.Aspect.Start != 1 {
			t.Fatalf("tree heuristic paired professional with %d, want staff: %v", p.Aspect.Start, pairs)
		}
		if p.Opinion.Start == 12 && p.Aspect.Start != 10 {
			t.Fatalf("beautiful must pair with decor: %v", pairs)
		}
	}
}

func TestTreeBothDirections(t *testing.T) {
	// From aspects: each aspect gets exactly one opinion. From opinions:
	// every opinion gets an aspect, so staff collects all three adjectives.
	tokens, aspects, opinions := paperSentence()
	lex := parse.DomainLexicon(lexicon.Restaurants())
	fromAs := Tree{Lex: lex}.Pairs(tokens, aspects, opinions)
	if len(fromAs) != 2 {
		t.Fatalf("aspects direction must produce one pair per aspect: %v", fromAs)
	}
	fromOp := Tree{Lex: lex, FromOpinions: true}.Pairs(tokens, aspects, opinions)
	if len(fromOp) != 4 {
		t.Fatalf("opinions direction must produce one pair per opinion: %v", fromOp)
	}
}

func TestHeuristicsEmptyInputs(t *testing.T) {
	lex := parse.DomainLexicon(lexicon.Restaurants())
	for _, h := range []Heuristic{WordDistance{}, Tree{Lex: lex}} {
		if got := h.Pairs([]string{"hello"}, nil, nil); got != nil {
			t.Fatalf("%s: empty spans must produce nil", h.Name())
		}
	}
}

func trainedEncoder(t *testing.T, train []datasets.PairingExample) *bert.Model {
	t.Helper()
	v := tokenize.NewVocab()
	for _, ex := range train {
		v.AddAll(ex.Tokens)
	}
	cfg := bert.Config{Layers: 2, Heads: 4, Dim: 32, FFDim: 48, MaxLen: 40}
	m := bert.New(rand.New(rand.NewSource(9)), cfg, v)
	// Light MLM so attention heads carry usable structure.
	var corpus [][]string
	for i, ex := range train {
		if i >= 80 {
			break
		}
		corpus = append(corpus, ex.Tokens)
	}
	m.TrainMLM(rand.New(rand.NewSource(10)), corpus, bert.MLMConfig{
		MaskProb: 0.15, LR: 1e-3, Epochs: 2, ClipNorm: 5,
	})
	return m
}

func pairingData(t *testing.T) (train, test []datasets.PairingExample) {
	t.Helper()
	sents, test := datasets.PairingBenchmark(datasets.Fast)
	for _, s := range sents {
		train = append(train, datasets.EnumeratePairs(s)...)
	}
	return train, test
}

func TestAttentionHeuristicBeatsChance(t *testing.T) {
	train, test := pairingData(t)
	enc := trainedEncoder(t, train)
	heads := SelectHeads(enc, train[:100], 1)
	if len(heads) != 1 {
		t.Fatalf("SelectHeads returned %d", len(heads))
	}
	if heads[0].Accuracy <= 0.55 {
		t.Fatalf("best head should beat chance on the dev slice: %v", heads[0].Accuracy)
	}
	lf := LFFromHeuristic(Attention{Enc: enc, Layer: heads[0].Layer, Head: heads[0].Head})
	var bin metrics.Binary
	for _, ex := range test {
		bin.Observe(lf.Apply(CandidateFromExample(ex)) == snorkel.Positive, ex.Label)
	}
	// The test set is deliberately hardened against surface heuristics
	// (distance-adversarial sampling), so a raw head's balanced accuracy sits
	// near chance at fast scale; it must at least remain a usable weak voter.
	if bin.Accuracy() < 0.40 {
		t.Fatalf("best attention head unusable: %v", bin.Accuracy())
	}
}

func TestSelectHeadsOrdering(t *testing.T) {
	train, _ := pairingData(t)
	enc := trainedEncoder(t, train)
	scores := SelectHeads(enc, train[:60], 5)
	if len(scores) != 5 {
		t.Fatalf("want 5 heads, got %d", len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i].Accuracy > scores[i-1].Accuracy {
			t.Fatal("heads must be sorted by accuracy descending")
		}
	}
}

func TestStandardLFsShape(t *testing.T) {
	train, _ := pairingData(t)
	enc := trainedEncoder(t, train)
	heads := SelectHeads(enc, train[:60], 5)
	names := []string{"lf_bert_7:10", "lf_bert_3:10", "lf_bert_3:8", "lf_bert_4:6", "lf_bert_8:9"}
	lfs := StandardLFs(enc, parse.DomainLexicon(lexicon.Hotels()), heads, names)
	if len(lfs) != 7 {
		t.Fatalf("the paper uses seven labeling functions, got %d", len(lfs))
	}
	if lfs[0].Name != "lf_tree_as" || lfs[1].Name != "lf_tree_op" {
		t.Fatalf("tree LF names: %s %s", lfs[0].Name, lfs[1].Name)
	}
	if lfs[2].Name != "lf_bert_7:10" {
		t.Fatalf("display name not applied: %s", lfs[2].Name)
	}
}

func TestTreeLFsHighPrecision(t *testing.T) {
	// §6.4: all labeling functions enjoy high precision (low recall is fine).
	_, test := pairingData(t)
	lex := parse.DomainLexicon(lexicon.Hotels())
	for _, h := range []Heuristic{Tree{Lex: lex}, Tree{Lex: lex, FromOpinions: true}} {
		lf := LFFromHeuristic(h)
		var bin metrics.Binary
		for _, ex := range test {
			bin.Observe(lf.Apply(CandidateFromExample(ex)) == snorkel.Positive, ex.Label)
		}
		if bin.Precision() < 0.7 {
			t.Fatalf("%s precision too low: %v", h.Name(), bin.Precision())
		}
	}
}

func TestDiscriminativePipelineEndToEnd(t *testing.T) {
	// The full Fig. 6 pipeline: LFs -> majority-vote labels -> classifier,
	// evaluated against the gold test set. Must beat always-negative.
	train, test := pairingData(t)
	enc := trainedEncoder(t, train)
	heads := SelectHeads(enc, train[:150], 5)
	lfs := StandardLFs(enc, parse.DomainLexicon(lexicon.Hotels()), heads, nil)

	cands := make([]Candidate, len(train))
	for i, ex := range train {
		cands[i] = CandidateFromExample(ex)
	}
	votes := snorkel.ApplyAll(lfs, cands)
	labels := make([]float64, len(cands))
	gen, err := snorkel.FitGenerative(votes, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range votes {
		labels[i] = gen.Posterior(row)
	}
	clf := NewClassifier(enc, DefaultClassifierConfig())
	clf.Train(cands, labels)

	var bin metrics.Binary
	for _, ex := range test {
		bin.Observe(clf.Predict(CandidateFromExample(ex)) > 0.5, ex.Label)
	}
	// Baseline: always answering "not a pair".
	var base metrics.Binary
	for _, ex := range test {
		base.Observe(false, ex.Label)
	}
	if bin.Accuracy() <= base.Accuracy() {
		t.Fatalf("discriminative model (%v) must beat always-negative (%v)",
			bin.Accuracy(), base.Accuracy())
	}
	if bin.Recall() == 0 {
		t.Fatal("discriminative model predicts nothing positive")
	}
}

func TestClassifierFitsGoldLabelsDirectly(t *testing.T) {
	// Sanity: with gold labels the classifier must fit its training set.
	train, _ := pairingData(t)
	if len(train) > 200 {
		train = train[:200]
	}
	enc := trainedEncoder(t, train)
	cands := make([]Candidate, len(train))
	labels := make([]float64, len(train))
	for i, ex := range train {
		cands[i] = CandidateFromExample(ex)
		if ex.Label {
			labels[i] = 1
		}
	}
	cfg := DefaultClassifierConfig()
	cfg.Epochs = 8
	clf := NewClassifier(enc, cfg)
	clf.Train(cands, labels)
	correct := 0
	for i, c := range cands {
		if (clf.Predict(c) > 0.5) == (labels[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(cands)); acc < 0.75 {
		t.Fatalf("classifier cannot fit its own training data: %v", acc)
	}
}

func TestCandidatesFromSpans(t *testing.T) {
	tokens, aspects, opinions := paperSentence()
	spans := append(append([]tokenize.Span{}, aspects...), opinions...)
	cands := CandidatesFromSpans(tokens, spans)
	if len(cands) != len(aspects)*len(opinions) {
		t.Fatalf("P_all size %d, want %d", len(cands), len(aspects)*len(opinions))
	}
	for _, c := range cands {
		if c.Aspect.Kind != tokenize.AspectSpan || c.Opinion.Kind != tokenize.OpinionSpan {
			t.Fatal("kind confusion in candidates")
		}
		if len(c.Aspects) != 2 || len(c.Opinions) != 4 {
			t.Fatal("candidates must carry all sentence spans")
		}
	}
}

func TestLFBertNaming(t *testing.T) {
	if got := lfBertName(7, 10); got != "lf_bert_7:10" {
		t.Fatalf("name: %s", got)
	}
	if got := lfBertName(0, 0); got != "lf_bert_0:0" {
		t.Fatalf("name: %s", got)
	}
}
