package pairing

import (
	"math/rand"
	"sort"

	"saccs/internal/bert"
	"saccs/internal/datasets"
	"saccs/internal/mat"
	"saccs/internal/nn"
	"saccs/internal/parse"
	"saccs/internal/postag"
	"saccs/internal/snorkel"
	"saccs/internal/tokenize"
)

// SentenceEncoder supplies contextual embeddings; *bert.Model satisfies it.
type SentenceEncoder interface {
	EncodeTokens(tokens []string) []mat.Vec
	EmbeddingDim() int
}

// ClassifierConfig tunes the discriminative pairing model.
type ClassifierConfig struct {
	// Hidden is the width of the sigmoid hidden layer.
	Hidden int
	// LR is the Adam learning rate.
	LR float64
	// Epochs over the generated training set.
	Epochs int
	// Seed drives initialization and shuffling.
	Seed int64
}

// DefaultClassifierConfig returns the recipe used across the reproduction.
func DefaultClassifierConfig() ClassifierConfig {
	return ClassifierConfig{Hidden: 48, LR: 5e-3, Epochs: 10, Seed: 3}
}

// Classifier is the §5.2 discriminative model: a two-layer neural network
// with a sigmoid activation over BERT encodings of the sentence s_i and the
// candidate phrase p_i (realized as the sentence encoding plus the
// contextual vectors of the candidate's aspect and opinion spans), together
// with span geometry and shallow-parse structure — the signal a full BERT
// cross-encoder would carry in its attention.
type Classifier struct {
	enc    SentenceEncoder
	l1, l2 *nn.Linear
	cfg    ClassifierConfig
	// Lex supplies POS overrides for the parse features; nil works (plain
	// suffix tagging) but a domain lexicon sharpens clause splitting.
	Lex postag.Lexicon
}

// positionalFeatures is the number of scalar span-geometry and parse
// features appended to the embedding features.
const positionalFeatures = 6

// NewClassifier builds an untrained pairing classifier.
func NewClassifier(enc SentenceEncoder, cfg ClassifierConfig) *Classifier {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := enc.EmbeddingDim()*3 + positionalFeatures
	return &Classifier{
		enc: enc,
		l1:  nn.NewLinear(rng, "pairing.l1", dim, cfg.Hidden),
		l2:  nn.NewLinear(rng, "pairing.l2", cfg.Hidden, 1),
		cfg: cfg,
	}
}

// features encodes [sentence-mean ; aspect-span-mean ; opinion-span-mean ;
// span geometry]. The geometry block (normalized distance, order, adjacency,
// competing-span pressure) gives the network the positional signal a full
// BERT cross-encoder would carry in its attention.
func (c *Classifier) features(cand Candidate) mat.Vec {
	hs := c.enc.EncodeTokens(cand.Tokens)
	dim := c.enc.EmbeddingDim()
	out := mat.NewVec(3*dim + positionalFeatures)
	if len(hs) == 0 {
		return out
	}
	pool := func(dst mat.Vec, start, end int) {
		n := 0
		for i := start; i < end && i < len(hs); i++ {
			if i < 0 {
				continue
			}
			dst.Add(hs[i])
			n++
		}
		if n > 0 {
			dst.Scale(1 / float64(n))
		}
	}
	pool(out[:dim], 0, len(hs))
	pool(out[dim:2*dim], cand.Aspect.Start, cand.Aspect.End)
	pool(out[2*dim:3*dim], cand.Opinion.Start, cand.Opinion.End)

	n := float64(len(cand.Tokens))
	dist := spanMid(cand.Aspect) - spanMid(cand.Opinion)
	if dist < 0 {
		dist = -dist
	}
	out[3*dim] = dist / n
	if cand.Aspect.Start < cand.Opinion.Start {
		out[3*dim+1] = 1 // aspect precedes opinion
	}
	// Is a competing opinion strictly between the candidate spans? That is
	// the telltale of a wrong long-range pair.
	lo, hi := cand.Aspect.End, cand.Opinion.Start
	if cand.Opinion.End <= cand.Aspect.Start {
		lo, hi = cand.Opinion.End, cand.Aspect.Start
	}
	for _, op := range cand.Opinions {
		if op != cand.Opinion && op.Start >= lo && op.End <= hi {
			out[3*dim+2] = 1
			break
		}
	}
	for _, asp := range cand.Aspects {
		if asp != cand.Aspect && asp.Start >= lo && asp.End <= hi {
			out[3*dim+3] = 1
			break
		}
	}
	// Shallow-parse structure: normalized tree distance and same-clause flag.
	tree := parse.Build(c.Lex, cand.Tokens)
	ai := int(spanMid(cand.Aspect))
	oi := int(spanMid(cand.Opinion))
	d := tree.Distance(ai, oi)
	if d > 20 {
		d = 20
	}
	out[3*dim+4] = float64(d) / 20
	if tree.SameClause(ai, oi) {
		out[3*dim+5] = 1
	}
	return out
}

// forward returns the pre-sigmoid logit and the hidden activation cache.
func (c *Classifier) forward(x mat.Vec) (float64, mat.Vec, mat.Vec) {
	pre := c.l1.Forward(x)
	h := nn.SigmoidVec(pre)
	logit := c.l2.Forward(h)[0]
	return logit, pre, h
}

// Params returns the trainable tensors.
func (c *Classifier) Params() []*nn.Param {
	return append(c.l1.Params(), c.l2.Params()...)
}

// Train fits the classifier on candidates with (possibly probabilistic)
// labels in [0,1] and returns the final epoch's mean loss.
func (c *Classifier) Train(cands []Candidate, labels []float64) float64 {
	opt := nn.NewAdam(c.cfg.LR)
	params := c.Params()
	feats := make([]mat.Vec, len(cands))
	for i, cand := range cands {
		feats[i] = c.features(cand)
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	shuffle := rand.New(rand.NewSource(c.cfg.Seed + 11))
	var last float64
	for epoch := 0; epoch < c.cfg.Epochs; epoch++ {
		shuffle.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, idx := range order {
			x := feats[idx]
			nn.ZeroGrads(params)
			logit, _, h := c.forward(x)
			loss, _, dLogit := nn.BCELogit(logit, labels[idx])
			dH := c.l2.Backward(h, mat.Vec{dLogit})
			dPre := mat.NewVec(len(h))
			for i := range h {
				dPre[i] = dH[i] * h[i] * (1 - h[i])
			}
			c.l1.Backward(x, dPre)
			nn.ClipGrads(params, 5)
			opt.Step(params)
			total += loss
		}
		if len(order) > 0 {
			last = total / float64(len(order))
		}
	}
	return last
}

// Predict returns the positive-class probability for a candidate.
func (c *Classifier) Predict(cand Candidate) float64 {
	logit, _, _ := c.forward(c.features(cand))
	return nn.Sigmoid(logit)
}

// CandidateFromExample converts a datasets.PairingExample.
func CandidateFromExample(ex datasets.PairingExample) Candidate {
	return Candidate{
		Tokens:   ex.Tokens,
		Aspects:  ex.Aspects,
		Opinions: ex.Opinions,
		Aspect:   ex.Aspect,
		Opinion:  ex.Opinion,
	}
}

// CandidatesFromSpans enumerates P_all (§5.2) for a tagged sentence: every
// (aspect, opinion) combination regardless of soundness.
func CandidatesFromSpans(tokens []string, spans []tokenize.Span) []Candidate {
	var aspects, opinions []tokenize.Span
	for _, sp := range spans {
		if sp.Kind == tokenize.AspectSpan {
			aspects = append(aspects, sp)
		} else {
			opinions = append(opinions, sp)
		}
	}
	var out []Candidate
	for _, a := range aspects {
		for _, o := range opinions {
			out = append(out, Candidate{
				Tokens: tokens, Aspects: aspects, Opinions: opinions,
				Aspect: a, Opinion: o,
			})
		}
	}
	return out
}

// DefaultAttentionMargin is the conservatism the standard attention LFs use
// (§6.4 precision profile).
const DefaultAttentionMargin = 0.15

// HeadScore records a (layer, head) candidate's dev accuracy.
type HeadScore struct {
	Layer, Head int
	Accuracy    float64
}

// SelectHeads performs the paper's "qualitative analysis" (§5.2): it scores
// every attention head of the encoder by pairing accuracy on a small labeled
// dev set and returns the k best, ordered by accuracy.
func SelectHeads(enc *bert.Model, dev []datasets.PairingExample, k int) []HeadScore {
	var scores []HeadScore
	for layer := 0; layer < enc.Cfg.Layers; layer++ {
		for head := 0; head < enc.Cfg.Heads; head++ {
			h := Attention{Enc: enc, Layer: layer, Head: head, Margin: DefaultAttentionMargin}
			lf := LFFromHeuristic(h)
			correct := 0
			for _, ex := range dev {
				vote := lf.Apply(CandidateFromExample(ex))
				if (vote == snorkel.Positive) == ex.Label {
					correct++
				}
			}
			acc := 0.0
			if len(dev) > 0 {
				acc = float64(correct) / float64(len(dev))
			}
			scores = append(scores, HeadScore{Layer: layer, Head: head, Accuracy: acc})
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Accuracy != scores[j].Accuracy {
			return scores[i].Accuracy > scores[j].Accuracy
		}
		if scores[i].Layer != scores[j].Layer {
			return scores[i].Layer < scores[j].Layer
		}
		return scores[i].Head < scores[j].Head
	})
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

// StandardLFs builds the paper's seven labeling functions (§5.2): the two
// parse-tree LFs plus the five best attention heads, optionally renamed with
// the paper's display labels (lf_bert_7:10, ...).
func StandardLFs(enc *bert.Model, lex postag.Lexicon, heads []HeadScore, displayNames []string) []snorkel.LF[Candidate] {
	lfs := []snorkel.LF[Candidate]{
		LFFromHeuristic(Tree{Lex: lex, FromOpinions: false}),
		LFFromHeuristic(Tree{Lex: lex, FromOpinions: true}),
	}
	for i, hs := range heads {
		name := ""
		if i < len(displayNames) {
			name = displayNames[i]
		}
		lfs = append(lfs, LFFromAspectHeuristic(Attention{
			Enc: enc, Layer: hs.Layer, Head: hs.Head, Margin: DefaultAttentionMargin,
			DisplayName: name,
		}))
	}
	return lfs
}
