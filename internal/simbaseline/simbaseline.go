// Package simbaseline implements SIM, the second baseline of §6.2: a
// determined, tireless user sweeping Yelp's queryable attribute filters. SIM
// enumerates every combination of one or two attribute=value filters, ranks
// the surviving entities by star rating, and — to make the baseline as
// strong as the paper demands — keeps the combination that maximizes the
// NDCG of the query's ground truth.
package simbaseline

import (
	"sort"

	"saccs/internal/metrics"
	"saccs/internal/yelp"
)

// Filter is one attribute=value predicate.
type Filter struct {
	Attr, Value string
}

// Result reports the best combination found for a query.
type Result struct {
	NDCG    float64
	Filters []Filter
}

// Best sweeps all combinations of up to maxAttrs attribute filters (1 or 2
// in the paper), ranking filtered entities by stars, and returns the
// combination with the highest NDCG@k against gains. The no-filter
// combination (plain star ranking) is always considered.
func Best(w *yelp.World, gains map[string]float64, k, maxAttrs int) Result {
	combos := enumerate(maxAttrs)
	best := Result{NDCG: -1}
	for _, combo := range combos {
		ranked := rankByStars(w, combo)
		score := metrics.NDCG(gains, ranked, k)
		if score > best.NDCG {
			best = Result{NDCG: score, Filters: combo}
		}
	}
	return best
}

// enumerate builds every combination of 0, 1, ..., maxAttrs filters over
// distinct attributes.
func enumerate(maxAttrs int) [][]Filter {
	attrVals := yelp.AttributeValues()
	names := make([]string, 0, len(attrVals))
	for name := range attrVals {
		names = append(names, name)
	}
	sort.Strings(names)

	combos := [][]Filter{nil} // the unfiltered sweep
	if maxAttrs >= 1 {
		for _, name := range names {
			for _, v := range attrVals[name] {
				combos = append(combos, []Filter{{Attr: name, Value: v}})
			}
		}
	}
	if maxAttrs >= 2 {
		for i, a := range names {
			for _, b := range names[i+1:] {
				for _, va := range attrVals[a] {
					for _, vb := range attrVals[b] {
						combos = append(combos, []Filter{{a, va}, {b, vb}})
					}
				}
			}
		}
	}
	return combos
}

// rankByStars filters the world by the combination and sorts by star rating
// (descending, deterministic ties) — the ordering Yelp's interface gives.
func rankByStars(w *yelp.World, filters []Filter) []string {
	type se struct {
		id    string
		stars float64
	}
	var kept []se
	for _, e := range w.Entities {
		ok := true
		for _, f := range filters {
			if e.Attrs[f.Attr] != f.Value {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, se{e.ID, e.Stars})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].stars != kept[j].stars {
			return kept[i].stars > kept[j].stars
		}
		return kept[i].id < kept[j].id
	})
	out := make([]string, len(kept))
	for i, e := range kept {
		out[i] = e.id
	}
	return out
}
