package simbaseline

import (
	"testing"

	"saccs/internal/crowd"
	"saccs/internal/yelp"
)

func world() *yelp.World { return yelp.Generate(yelp.FastConfig()) }

func TestEnumerateCounts(t *testing.T) {
	vals := yelp.AttributeValues()
	single := 0
	for _, vs := range vals {
		single += len(vs)
	}
	one := enumerate(1)
	if len(one) != 1+single {
		t.Fatalf("1-attr combos: %d, want %d", len(one), 1+single)
	}
	two := enumerate(2)
	if len(two) <= len(one) {
		t.Fatal("2-attr enumeration must add combos")
	}
	// No combo may repeat an attribute.
	for _, combo := range two {
		seen := map[string]bool{}
		for _, f := range combo {
			if seen[f.Attr] {
				t.Fatalf("attribute repeated in combo: %v", combo)
			}
			seen[f.Attr] = true
		}
	}
}

func TestRankByStarsFilters(t *testing.T) {
	w := world()
	all := rankByStars(w, nil)
	if len(all) != len(w.Entities) {
		t.Fatalf("unfiltered: %d", len(all))
	}
	quiet := rankByStars(w, []Filter{{yelp.AttrNoiseLevel, "quiet"}})
	for _, id := range quiet {
		if w.Entity(id).Attrs[yelp.AttrNoiseLevel] != "quiet" {
			t.Fatal("filter leak")
		}
	}
	// Sorted by stars descending.
	for i := 1; i < len(all); i++ {
		if w.Entity(all[i]).Stars > w.Entity(all[i-1]).Stars {
			t.Fatal("not sorted by stars")
		}
	}
}

func TestBestPicksMaximizingCombo(t *testing.T) {
	w := world()
	truth := crowd.GroundTruth(w, crowd.DefaultConfig())
	gains := truth.Gains([]string{"quiet atmosphere"}, entityIDs(w))
	one := Best(w, gains, 10, 1)
	two := Best(w, gains, 10, 2)
	if one.NDCG < 0 || one.NDCG > 1 {
		t.Fatalf("NDCG out of range: %v", one.NDCG)
	}
	// Searching a larger combination space can never do worse: it includes
	// all smaller combos.
	if two.NDCG < one.NDCG {
		t.Fatalf("2-attr best (%v) must be >= 1-attr best (%v)", two.NDCG, one.NDCG)
	}
	if len(two.Filters) > 2 {
		t.Fatalf("combo too large: %v", two.Filters)
	}
}

func TestBestBeatsRandomOrderOnCorrelatedTag(t *testing.T) {
	// For the quiet-atmosphere tag the NoiseLevel filter is informative:
	// SIM should beat the unfiltered star ranking.
	w := world()
	truth := crowd.GroundTruth(w, crowd.DefaultConfig())
	gains := truth.Gains([]string{"quiet atmosphere"}, entityIDs(w))
	stars := Best(w, gains, 10, 0) // only the unfiltered combo
	best := Best(w, gains, 10, 2)
	if best.NDCG < stars.NDCG {
		t.Fatalf("attribute filtering must not hurt: %v vs %v", best.NDCG, stars.NDCG)
	}
}

func entityIDs(w *yelp.World) []string {
	out := make([]string, len(w.Entities))
	for i, e := range w.Entities {
		out[i] = e.ID
	}
	return out
}
