// Package bert implements MiniBERT, the reproduction's stand-in for the
// pre-trained BERT of the paper (§4.1): a multi-head self-attention
// transformer encoder with token and position embeddings, trained with a
// masked-language-model objective — first on a general corpus (Wikipedia's
// role), then post-trained on domain reviews (the domain-knowledge step of
// §4.2, Xu et al. [58]). Attention matrices of every (layer, head) are
// exposed for the pairing heuristic of §5.1 (Fig. 5).
package bert

import (
	"math"

	"saccs/internal/mat"
	"saccs/internal/nn"
)

// LayerNorm normalizes a vector to zero mean / unit variance and applies a
// learned affine transform.
type LayerNorm struct {
	Dim   int
	Gain  *nn.Param // 1×Dim
	Bias  *nn.Param // 1×Dim
	Eps   float64
	cache []lnCache
}

type lnCache struct {
	xhat mat.Vec
	std  float64
}

// NewLayerNorm returns a layer norm with gain 1 and bias 0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim:  dim,
		Gain: nn.NewParam(name+".gain", 1, dim),
		Bias: nn.NewParam(name+".bias", 1, dim),
		Eps:  1e-5,
	}
	for i := range ln.Gain.W.Data {
		ln.Gain.W.Data[i] = 1
	}
	return ln
}

// Params returns the learnable tensors.
func (ln *LayerNorm) Params() []*nn.Param { return []*nn.Param{ln.Gain, ln.Bias} }

// ForwardSeq normalizes each vector, caching intermediates for BackwardSeq.
func (ln *LayerNorm) ForwardSeq(xs []mat.Vec) []mat.Vec {
	ln.cache = make([]lnCache, len(xs))
	ys := make([]mat.Vec, len(xs))
	for t, x := range xs {
		mean := x.Mean()
		var varSum float64
		for _, v := range x {
			d := v - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum/float64(len(x)) + ln.Eps)
		xhat := mat.NewVec(len(x))
		y := mat.NewVec(len(x))
		for i, v := range x {
			xhat[i] = (v - mean) / std
			y[i] = xhat[i]*ln.Gain.W.Data[i] + ln.Bias.W.Data[i]
		}
		ln.cache[t] = lnCache{xhat: xhat, std: std}
		ys[t] = y
	}
	return ys
}

// ApplySeq normalizes each vector without caching intermediates: the
// reentrant inference path. Unlike ForwardSeq it writes no receiver state,
// so any number of goroutines may call it concurrently (BackwardSeq still
// requires a prior ForwardSeq).
func (ln *LayerNorm) ApplySeq(xs []mat.Vec) []mat.Vec {
	ys := make([]mat.Vec, len(xs))
	for t, x := range xs {
		y := mat.NewVec(len(x))
		ln.ApplyInto(y, x)
		ys[t] = y
	}
	return ys
}

// ApplyInto normalizes x into the caller-provided y — the allocation-free
// inference kernel behind ApplySeq. It computes exactly what ForwardSeq
// computes for one vector (same mean/variance/affine order), writes no
// receiver state, and is safe for concurrent callers.
func (ln *LayerNorm) ApplyInto(y, x mat.Vec) {
	mean := x.Mean()
	var varSum float64
	for _, v := range x {
		d := v - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum/float64(len(x)) + ln.Eps)
	for i, v := range x {
		y[i] = (v-mean)/std*ln.Gain.W.Data[i] + ln.Bias.W.Data[i]
	}
}

// BackwardSeq backpropagates through the most recent ForwardSeq.
func (ln *LayerNorm) BackwardSeq(dys []mat.Vec) []mat.Vec {
	dxs := make([]mat.Vec, len(dys))
	n := float64(ln.Dim)
	for t, dy := range dys {
		c := ln.cache[t]
		dxhat := mat.NewVec(ln.Dim)
		var sumDxhat, sumDxhatXhat float64
		for i, d := range dy {
			ln.Gain.G.Data[i] += d * c.xhat[i]
			ln.Bias.G.Data[i] += d
			dxhat[i] = d * ln.Gain.W.Data[i]
			sumDxhat += dxhat[i]
			sumDxhatXhat += dxhat[i] * c.xhat[i]
		}
		dx := mat.NewVec(ln.Dim)
		for i := range dx {
			dx[i] = (dxhat[i] - sumDxhat/n - c.xhat[i]*sumDxhatXhat/n) / c.std
		}
		dxs[t] = dx
	}
	return dxs
}
