package bert

import (
	"math/rand"
	"time"

	"saccs/internal/mat"
	"saccs/internal/nn"
	"saccs/internal/tokenize"
)

// MLMConfig tunes masked-language-model training.
type MLMConfig struct {
	// MaskProb is the fraction of tokens selected for prediction (BERT's 15%).
	MaskProb float64
	// LR is the Adam learning rate.
	LR float64
	// Epochs over the corpus.
	Epochs int
	// ClipNorm bounds the global gradient norm per step.
	ClipNorm float64
}

// DefaultMLMConfig returns the training recipe used by the reproduction.
func DefaultMLMConfig() MLMConfig {
	return MLMConfig{MaskProb: 0.15, LR: 1e-3, Epochs: 3, ClipNorm: 5}
}

// TrainMLM runs masked-language-model training over the corpus (one sentence
// per step) and returns the mean loss of the final epoch. Selected positions
// follow BERT's 80/10/10 rule: 80% become [MASK], 10% a random token, 10%
// stay unchanged.
func (m *Model) TrainMLM(rng *rand.Rand, corpus [][]string, cfg MLMConfig) float64 {
	opt := nn.NewAdam(cfg.LR)
	params := m.Params()
	maskID := m.Vocab.ID(tokenize.MaskToken)
	var lastEpochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochStart time.Time
		if m.o != nil {
			epochStart = time.Now()
		}
		var total float64
		var count int
		for _, sent := range corpus {
			ids := m.truncate(m.Vocab.Encode(sent))
			if len(ids) == 0 {
				continue
			}
			masked := append([]int(nil), ids...)
			var targets []int // positions to predict
			for i := range masked {
				if rng.Float64() >= cfg.MaskProb {
					continue
				}
				targets = append(targets, i)
				switch r := rng.Float64(); {
				case r < 0.8:
					masked[i] = maskID
				case r < 0.9:
					masked[i] = rng.Intn(m.Vocab.Len())
				}
			}
			if len(targets) == 0 {
				targets = append(targets, rng.Intn(len(masked)))
				masked[targets[0]] = maskID
			}
			nn.ZeroGrads(params)
			hs := m.Encode(masked)
			dhs := make([]mat.Vec, len(hs))
			for i := range dhs {
				dhs[i] = mat.NewVec(m.Cfg.Dim)
			}
			var loss float64
			for _, pos := range targets {
				logits := m.MLMHead.Forward(hs[pos])
				l, dLogits := nn.SoftmaxCE(logits, ids[pos])
				loss += l
				dhs[pos].Add(m.MLMHead.Backward(hs[pos], dLogits))
			}
			m.Backward(dhs)
			nn.ClipGrads(params, cfg.ClipNorm)
			opt.Step(params)
			total += loss / float64(len(targets))
			count++
		}
		if count > 0 {
			lastEpochLoss = total / float64(count)
		}
		if m.o != nil {
			m.o.Histogram("bert.mlm.epoch").ObserveSince(epochStart)
			m.o.Gauge("bert.mlm.loss").Set(lastEpochLoss)
			m.o.Counter("bert.mlm.epochs.total").Inc()
		}
	}
	return lastEpochLoss
}

// MLMLoss evaluates the mean per-token masked loss on a corpus without
// updating weights (deterministic masking by the provided rng).
func (m *Model) MLMLoss(rng *rand.Rand, corpus [][]string, maskProb float64) float64 {
	maskID := m.Vocab.ID(tokenize.MaskToken)
	var total float64
	var count int
	for _, sent := range corpus {
		ids := m.truncate(m.Vocab.Encode(sent))
		if len(ids) == 0 {
			continue
		}
		masked := append([]int(nil), ids...)
		var targets []int
		for i := range masked {
			if rng.Float64() < maskProb {
				targets = append(targets, i)
				masked[i] = maskID
			}
		}
		if len(targets) == 0 {
			continue
		}
		hs := m.Encode(masked)
		for _, pos := range targets {
			logits := m.MLMHead.Forward(hs[pos])
			l, _ := nn.SoftmaxCE(logits, ids[pos])
			total += l
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
