package bert

import (
	"math/rand"
	"testing"

	"saccs/internal/nn"
)

// Infer promises bit-identical hidden states to Encode: the golden
// snapshots and the extraction cache's determinism contract depend on the
// inference kernels executing Encode's float operations in Encode's order.
func TestInferMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	v := tinyVocab()
	m := New(rng, Config{Layers: 2, Heads: 2, Dim: 8, FFDim: 12, MaxLen: 16}, v)
	for _, sent := range [][]string{
		{"the", "food", "is", "delicious"},
		{"staff"},
		{"the", "staff", "is", "friendly", "and", "the", "food", "is", "delicious", "."},
	} {
		ids := v.Encode(sent)
		want := m.Encode(ids)
		got := m.Infer(ids)
		if len(got) != len(want) {
			t.Fatalf("length %d vs %d", len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%v: h[%d][%d]: %v != %v", sent, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestInferArenaMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	v := tinyVocab()
	m := New(rng, tinyConfig(), v)
	ids := v.Encode([]string{"the", "food", "is", "delicious", "."})
	want := m.Infer(ids)
	var a nn.Arena
	got := m.InferArena(ids, &a)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("h[%d][%d]: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// The arena-backed tokenizing variant must agree too.
	a.Reset()
	got2 := m.InferTokensArena([]string{"the", "food", "is", "delicious", "."}, &a)
	for i := range want {
		for j := range want[i] {
			if got2[i][j] != want[i][j] {
				t.Fatalf("tokens h[%d][%d]: %v != %v", i, j, got2[i][j], want[i][j])
			}
		}
	}
}

func TestInferEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := New(rng, tinyConfig(), tinyVocab())
	if got := m.Infer(nil); len(got) != 0 {
		t.Fatalf("Infer(nil) returned %d vectors", len(got))
	}
	var a nn.Arena
	if got := m.InferArena(nil, &a); len(got) != 0 {
		t.Fatalf("InferArena(nil) returned %d vectors", len(got))
	}
}

// TestInferAllocsRegression pins the per-call allocation count of the
// pooled-arena Infer path: the copy-out (one header slice + one flat
// backing array) plus pool bookkeeping. The pre-arena implementation paid
// hundreds of allocations per call in fresh intermediate vectors.
func TestInferAllocsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	v := tinyVocab()
	m := New(rng, Config{Layers: 2, Heads: 2, Dim: 16, FFDim: 24, MaxLen: 32}, v)
	ids := v.Encode([]string{"the", "staff", "is", "friendly", "and", "the", "food", "is", "delicious", "."})
	for i := 0; i < 3; i++ {
		m.Infer(ids) // warm the pooled arenas
	}
	allocs := testing.AllocsPerRun(100, func() { m.Infer(ids) })
	if allocs > 8 {
		t.Fatalf("warm Infer allocates %v times per call, want <= 8", allocs)
	}
}

// TestInferArenaZeroAllocsWhenWarm pins the fully arena-backed path at zero.
func TestInferArenaZeroAllocsWhenWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	v := tinyVocab()
	m := New(rng, tinyConfig(), v)
	ids := v.Encode([]string{"the", "food", "is", "delicious"})
	var a nn.Arena
	m.InferArena(ids, &a) // warm
	allocs := testing.AllocsPerRun(100, func() {
		a.Reset()
		m.InferArena(ids, &a)
	})
	if allocs != 0 {
		t.Fatalf("warm InferArena allocates %v times per call, want 0", allocs)
	}
}
