package bert

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"saccs/internal/mat"
	"saccs/internal/nn"
	"saccs/internal/obs"
	"saccs/internal/tokenize"
)

// Config sizes a MiniBERT model.
type Config struct {
	// Layers is the number of transformer blocks.
	Layers int
	// Heads per block; Dim must be divisible by Heads.
	Heads int
	// Dim is the hidden width.
	Dim int
	// FFDim is the feed-forward inner width.
	FFDim int
	// MaxLen bounds sequence length (position table size).
	MaxLen int
}

// DefaultConfig returns the laptop-scale configuration used across the
// reproduction: 2 layers × 8 heads × 64 dims.
func DefaultConfig() Config {
	return Config{Layers: 2, Heads: 8, Dim: 64, FFDim: 128, MaxLen: 48}
}

// Model is the MiniBERT encoder plus its MLM head.
type Model struct {
	Cfg    Config
	Vocab  *tokenize.Vocab
	TokEmb *nn.Embedding
	PosEmb *nn.Embedding
	Blocks []*Block
	// MLMHead projects hidden states back onto the vocabulary.
	MLMHead *nn.Linear

	lastIDs    []int
	lastEmbeds []mat.Vec

	// scratch recycles per-call inference buffers across goroutines; see
	// Infer. Counters (attached via SetObserver) track pool traffic:
	// hits = gets − misses.
	scratch sync.Pool

	// observability (nil when disabled; see SetObserver).
	o           *obs.Observer
	encHist     *obs.Histogram
	encTokens   *obs.Counter
	scratchGets *obs.Counter
	scratchMiss *obs.Counter
}

// Scratch holds the per-call buffers of one inference forward pass: a whole-
// pipeline arena that every intermediate of the transformer stack (embedding
// sums, attention projections, score and softmax rows, residuals, FFN
// activations) is carved from. A Scratch belongs to exactly one in-flight
// Infer call; the model's sync.Pool recycles them so concurrent queries stop
// allocating entirely once each pooled arena has seen its peak demand.
type Scratch struct {
	nn.Arena
}

// SetObserver attaches runtime observability: every Encode records its
// latency and token count, and MLM training emits per-epoch duration and
// loss. A nil observer (the default) keeps the encode hot path to a single
// branch.
func (m *Model) SetObserver(o *obs.Observer) {
	m.o = o
	if o == nil {
		m.encHist, m.encTokens = nil, nil
		m.scratchGets, m.scratchMiss = nil, nil
		return
	}
	m.encHist = o.Histogram("bert.encode")
	m.encTokens = o.Counter("bert.encode.tokens.total")
	m.scratchGets = o.Counter("bert.scratch.get.total")
	m.scratchMiss = o.Counter("bert.scratch.miss.total")
}

// New builds a randomly initialized MiniBERT over the given vocabulary.
func New(rng *rand.Rand, cfg Config, vocab *tokenize.Vocab) *Model {
	m := &Model{
		Cfg:     cfg,
		Vocab:   vocab,
		TokEmb:  nn.NewEmbedding(rng, "bert.tok", vocab.Len(), cfg.Dim),
		PosEmb:  nn.NewEmbedding(rng, "bert.pos", cfg.MaxLen, cfg.Dim),
		MLMHead: nn.NewLinear(rng, "bert.mlm", cfg.Dim, vocab.Len()),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, NewBlock(rng, fmt.Sprintf("bert.block%d", i), cfg.Dim, cfg.Heads, cfg.FFDim))
	}
	m.scratch.New = func() any {
		m.scratchMiss.Inc()
		return &Scratch{}
	}
	return m
}

// Params returns every learnable tensor, MLM head included.
func (m *Model) Params() []*nn.Param {
	ps := append(m.TokEmb.Params(), m.PosEmb.Params()...)
	for _, b := range m.Blocks {
		ps = append(ps, b.Params()...)
	}
	return append(ps, m.MLMHead.Params()...)
}

// EncoderParams returns the learnable tensors without the MLM head.
func (m *Model) EncoderParams() []*nn.Param {
	ps := append(m.TokEmb.Params(), m.PosEmb.Params()...)
	for _, b := range m.Blocks {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// truncate clips ids to the model's positional capacity.
func (m *Model) truncate(ids []int) []int {
	if len(ids) > m.Cfg.MaxLen {
		return ids[:m.Cfg.MaxLen]
	}
	return ids
}

// Encode runs the encoder over token ids and returns one contextual vector
// per token. Sequences longer than MaxLen are truncated. The internal caches
// remain valid for Attention and backward passes until the next Encode.
func (m *Model) Encode(ids []int) []mat.Vec {
	if m.o != nil {
		defer m.encHist.ObserveSince(time.Now())
		m.encTokens.Add(int64(len(ids)))
	}
	ids = m.truncate(ids)
	m.lastIDs = ids
	xs := make([]mat.Vec, len(ids))
	for i, id := range ids {
		v := m.TokEmb.Lookup(id)
		v.Add(m.PosEmb.Table.W.Row(i))
		xs[i] = v
	}
	m.lastEmbeds = xs
	h := xs
	for _, b := range m.Blocks {
		h = b.ForwardSeq(h)
	}
	return h
}

// EncodeTokens tokenizes against the model vocabulary and encodes.
func (m *Model) EncodeTokens(tokens []string) []mat.Vec {
	return m.Encode(m.Vocab.Encode(tokens))
}

// Infer is the reentrant counterpart of Encode: the same forward pass, but
// no receiver state is written, so any number of goroutines may infer
// concurrently. Per-call buffers come from a pooled arena; the returned
// vectors are copied out of it (one backing array for the whole sequence),
// so they outlive the call. Because no caches are kept, Backward and
// Attention do not see Infer calls — use Encode for training and for the
// §5.1 attention-pairing readback.
func (m *Model) Infer(ids []int) []mat.Vec {
	if m.o != nil {
		defer m.encHist.ObserveSince(time.Now())
		m.encTokens.Add(int64(len(ids)))
	}
	m.scratchGets.Inc()
	s, _ := m.scratch.Get().(*Scratch)
	if s == nil { // zero-value Model built without New
		s = &Scratch{}
	}
	s.Reset()
	h := m.inferArena(ids, &s.Arena)
	// Copy results out of the arena before pooling it: one flat backing
	// array plus one header slice for the whole sequence.
	out := make([]mat.Vec, len(h))
	flat := make([]float64, len(h)*m.Cfg.Dim)
	for i, v := range h {
		dst := flat[i*m.Cfg.Dim : (i+1)*m.Cfg.Dim : (i+1)*m.Cfg.Dim]
		copy(dst, v)
		out[i] = dst
	}
	m.scratch.Put(s)
	return out
}

// InferArena runs the reentrant forward pass with every buffer — including
// the returned hidden states — carved from the caller's arena. The results
// are valid only until the arena's next Reset; callers that need them to
// survive should use Infer, which copies out. This is the whole-pipeline
// fast path: a tagger decode threads one arena through embeddings,
// transformer blocks, BiLSTM, projection, and Viterbi without a single heap
// allocation once the arena is warm.
func (m *Model) InferArena(ids []int, a *nn.Arena) []mat.Vec {
	if m.o != nil {
		defer m.encHist.ObserveSince(time.Now())
		m.encTokens.Add(int64(len(ids)))
	}
	return m.inferArena(ids, a)
}

func (m *Model) inferArena(ids []int, a *nn.Arena) []mat.Vec {
	ids = m.truncate(ids)
	xs := a.Seq(len(ids))
	for i, id := range ids {
		v := a.Vec(m.Cfg.Dim)
		m.TokEmb.LookupInto(v, id)
		v.Add(m.PosEmb.Table.W.Row(i))
		xs[i] = v
	}
	h := xs
	for _, b := range m.Blocks {
		h = b.InferSeq(h, a)
	}
	return h
}

// InferTokens tokenizes against the model vocabulary and runs the reentrant
// forward pass (see Infer).
func (m *Model) InferTokens(tokens []string) []mat.Vec {
	return m.Infer(m.Vocab.Encode(tokens))
}

// InferTokensArena tokenizes against the model vocabulary and runs the
// arena-backed forward pass (see InferArena). The token-id slice is carved
// from the arena too, so the whole call is allocation-free once warm.
func (m *Model) InferTokensArena(tokens []string, a *nn.Arena) []mat.Vec {
	ids := a.Ints(len(tokens))
	for i, t := range tokens {
		ids[i] = m.Vocab.ID(t)
	}
	return m.InferArena(ids, a)
}

// Backward backpropagates upstream gradients through the blocks and the
// embeddings of the most recent Encode. It returns the gradient with respect
// to the summed token+position input embeddings (useful for FGSM).
func (m *Model) Backward(dhs []mat.Vec) []mat.Vec {
	d := dhs
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		d = m.Blocks[i].BackwardSeq(d)
	}
	for i, id := range m.lastIDs {
		m.TokEmb.Accumulate(id, d[i])
		m.PosEmb.Accumulate(i, d[i])
	}
	return d
}

// Attention returns the attention matrix of (layer, head) from the most
// recent Encode: row i is token i's attention distribution (Fig. 5).
func (m *Model) Attention(layer, head int) []mat.Vec {
	if layer < 0 || layer >= len(m.Blocks) {
		return nil
	}
	return m.Blocks[layer].Attn.Attention(head)
}

// EmbeddingDim returns the contextual vector width.
func (m *Model) EmbeddingDim() int { return m.Cfg.Dim }

// SentenceVec encodes tokens and mean-pools the contextual vectors — the
// sentence encoding used by the discriminative pairing classifier (§5.2).
// It runs the reentrant forward pass, so similarity measures built on it
// (sim.Cosine) are safe under concurrent queries.
func (m *Model) SentenceVec(tokens []string) mat.Vec {
	hs := m.InferTokens(tokens)
	out := mat.NewVec(m.Cfg.Dim)
	if len(hs) == 0 {
		return out
	}
	for _, h := range hs {
		out.Add(h)
	}
	out.Scale(1 / float64(len(hs)))
	return out
}
