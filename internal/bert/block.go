package bert

import (
	"math/rand"

	"saccs/internal/mat"
	"saccs/internal/nn"
)

// Block is one transformer encoder layer: self-attention with a residual
// connection and layer norm, then a position-wise feed-forward network with
// a second residual and layer norm (post-norm arrangement).
type Block struct {
	Attn     *MultiHeadAttention
	LN1, LN2 *LayerNorm
	FF1, FF2 *nn.Linear

	cache *blockCache
}

type blockCache struct {
	xs      []mat.Vec // block input
	res1    []mat.Vec // x + attn(x), LN1 input
	h1      []mat.Vec // LN1 output (FFN input)
	ffPre   []mat.Vec // FF1 output pre-GELU
	ffAct   []mat.Vec // GELU output
	res2In  []mat.Vec // h1 + FF2(ffAct), LN2 input
	ffnOuts []mat.Vec
}

// NewBlock builds one encoder layer.
func NewBlock(rng *rand.Rand, name string, dim, heads, ffDim int) *Block {
	return &Block{
		Attn: NewMultiHeadAttention(rng, name+".attn", dim, heads),
		LN1:  NewLayerNorm(name+".ln1", dim),
		LN2:  NewLayerNorm(name+".ln2", dim),
		FF1:  nn.NewLinear(rng, name+".ff1", dim, ffDim),
		FF2:  nn.NewLinear(rng, name+".ff2", ffDim, dim),
	}
}

// Params returns the learnable tensors of the layer.
func (b *Block) Params() []*nn.Param {
	ps := b.Attn.Params()
	ps = append(ps, b.LN1.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.FF1.Params()...)
	ps = append(ps, b.FF2.Params()...)
	return ps
}

// ForwardSeq runs the layer over a token vector sequence.
func (b *Block) ForwardSeq(xs []mat.Vec) []mat.Vec {
	c := &blockCache{xs: xs}
	attnOut := b.Attn.ForwardSeq(xs)
	c.res1 = make([]mat.Vec, len(xs))
	for i := range xs {
		v := xs[i].Clone()
		v.Add(attnOut[i])
		c.res1[i] = v
	}
	c.h1 = b.LN1.ForwardSeq(c.res1)

	c.ffPre = b.FF1.ForwardSeq(c.h1)
	c.ffAct = make([]mat.Vec, len(xs))
	for i := range c.ffPre {
		c.ffAct[i] = nn.GELUVec(c.ffPre[i])
	}
	c.ffnOuts = b.FF2.ForwardSeq(c.ffAct)
	c.res2In = make([]mat.Vec, len(xs))
	for i := range xs {
		v := c.h1[i].Clone()
		v.Add(c.ffnOuts[i])
		c.res2In[i] = v
	}
	b.cache = c
	return b.LN2.ForwardSeq(c.res2In)
}

// InferSeq runs the layer without writing the receiver's cache — the
// reentrant inference path (no BackwardSeq, no Attention readback). Every
// intermediate comes from the caller's arena, so a warm arena makes the call
// allocation-free; the arithmetic is ForwardSeq's exactly. Safe for
// concurrent callers, each with its own arena.
func (b *Block) InferSeq(xs []mat.Vec, a *nn.Arena) []mat.Vec {
	n := len(xs)
	attnOut := b.Attn.InferSeq(xs, a)
	res1 := a.Seq(n)
	for i := range xs {
		v := a.Vec(len(xs[i]))
		copy(v, xs[i])
		v.Add(attnOut[i])
		res1[i] = v
	}
	h1 := a.Seq(n)
	for i := range res1 {
		y := a.Vec(len(res1[i]))
		b.LN1.ApplyInto(y, res1[i])
		h1[i] = y
	}
	ffPre := b.FF1.InferSeq(h1, a)
	ffAct := a.Seq(n)
	for i := range ffPre {
		y := a.Vec(len(ffPre[i]))
		nn.GELUInto(y, ffPre[i])
		ffAct[i] = y
	}
	ffnOuts := b.FF2.InferSeq(ffAct, a)
	res2 := a.Seq(n)
	for i := range xs {
		v := a.Vec(len(h1[i]))
		copy(v, h1[i])
		v.Add(ffnOuts[i])
		res2[i] = v
	}
	out := a.Seq(n)
	for i := range res2 {
		y := a.Vec(len(res2[i]))
		b.LN2.ApplyInto(y, res2[i])
		out[i] = y
	}
	return out
}

// BackwardSeq backpropagates through the most recent ForwardSeq.
func (b *Block) BackwardSeq(dys []mat.Vec) []mat.Vec {
	c := b.cache
	dRes2 := b.LN2.BackwardSeq(dys)
	// res2 = h1 + FF2(gelu(FF1(h1)))
	dFFOut := dRes2 // gradient into FF2 output
	dFFAct := b.FF2.BackwardSeq(c.ffAct, dFFOut)
	dFFPre := make([]mat.Vec, len(dys))
	for i := range dFFAct {
		dFFPre[i] = nn.GELUBackward(c.ffPre[i], dFFAct[i])
	}
	dH1 := b.FF1.BackwardSeq(c.h1, dFFPre)
	for i := range dH1 {
		dH1[i].Add(dRes2[i]) // residual path
	}
	dRes1 := b.LN1.BackwardSeq(dH1)
	// res1 = x + attn(x)
	dAttn := b.Attn.BackwardSeq(dRes1)
	dxs := make([]mat.Vec, len(dys))
	for i := range dRes1 {
		dx := dRes1[i].Clone()
		dx.Add(dAttn[i])
		dxs[i] = dx
	}
	return dxs
}
