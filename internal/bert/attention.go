package bert

import (
	"math"
	"math/rand"

	"saccs/internal/mat"
	"saccs/internal/nn"
)

// MultiHeadAttention is bidirectional (unmasked) self-attention over a token
// sequence, split into Heads independent heads.
type MultiHeadAttention struct {
	Dim, Heads, HeadDim int
	Wq, Wk, Wv, Wo      *nn.Linear
	cache               *mhaCache
}

type mhaCache struct {
	xs         []mat.Vec
	q, k, v    []mat.Vec   // per token, full Dim
	attn       [][]mat.Vec // [head][i] -> weights over j
	headOut    []mat.Vec   // per token, concatenated head outputs
	outputsRaw []mat.Vec   // Wo input (== headOut)
}

// NewMultiHeadAttention returns an attention block; dim must divide by heads.
func NewMultiHeadAttention(rng *rand.Rand, name string, dim, heads int) *MultiHeadAttention {
	if dim%heads != 0 {
		panic("bert: dim must be divisible by heads")
	}
	return &MultiHeadAttention{
		Dim: dim, Heads: heads, HeadDim: dim / heads,
		Wq: nn.NewLinear(rng, name+".wq", dim, dim),
		Wk: nn.NewLinear(rng, name+".wk", dim, dim),
		Wv: nn.NewLinear(rng, name+".wv", dim, dim),
		Wo: nn.NewLinear(rng, name+".wo", dim, dim),
	}
}

// Params returns the learnable tensors.
func (m *MultiHeadAttention) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range []*nn.Linear{m.Wq, m.Wk, m.Wv, m.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ForwardSeq runs self-attention over the sequence and returns the per-token
// outputs. Attention matrices are cached and retrievable via Attention.
func (m *MultiHeadAttention) ForwardSeq(xs []mat.Vec) []mat.Vec {
	n := len(xs)
	c := &mhaCache{
		xs: xs,
		q:  m.Wq.ForwardSeq(xs),
		k:  m.Wk.ForwardSeq(xs),
		v:  m.Wv.ForwardSeq(xs),
	}
	scale := 1 / math.Sqrt(float64(m.HeadDim))
	c.attn = make([][]mat.Vec, m.Heads)
	c.headOut = make([]mat.Vec, n)
	for i := range c.headOut {
		c.headOut[i] = mat.NewVec(m.Dim)
	}
	scores := mat.NewVec(n)
	for h := 0; h < m.Heads; h++ {
		lo := h * m.HeadDim
		hi := lo + m.HeadDim
		c.attn[h] = make([]mat.Vec, n)
		for i := 0; i < n; i++ {
			qi := c.q[i][lo:hi]
			for j := 0; j < n; j++ {
				scores[j] = mat.Vec(qi).Dot(c.k[j][lo:hi]) * scale
			}
			a := mat.NewVec(n)
			mat.Softmax(a, scores)
			c.attn[h][i] = a
			out := c.headOut[i][lo:hi]
			for j := 0; j < n; j++ {
				if a[j] == 0 {
					continue
				}
				mat.Vec(out).AddScaled(a[j], c.v[j][lo:hi])
			}
		}
	}
	c.outputsRaw = c.headOut
	m.cache = c
	return m.Wo.ForwardSeq(c.headOut)
}

// InferSeq runs self-attention without touching the receiver's cache — the
// reentrant inference path. Every buffer (projections, score and softmax
// rows, head outputs) comes from the caller's arena, so a warm arena makes
// the call allocation-free; attention weights are discarded, so Attention()
// reflects the last ForwardSeq, not InferSeq. It computes exactly what
// ForwardSeq computes, in the same order. Safe for concurrent callers, each
// with its own arena.
func (m *MultiHeadAttention) InferSeq(xs []mat.Vec, a *nn.Arena) []mat.Vec {
	n := len(xs)
	q := m.Wq.InferSeq(xs, a)
	k := m.Wk.InferSeq(xs, a)
	v := m.Wv.InferSeq(xs, a)
	scale := 1 / math.Sqrt(float64(m.HeadDim))
	headOut := a.Seq(n)
	for i := range headOut {
		headOut[i] = a.Vec(m.Dim)
	}
	scores := a.Vec(n)
	attn := a.Vec(n)
	for h := 0; h < m.Heads; h++ {
		lo := h * m.HeadDim
		hi := lo + m.HeadDim
		for i := 0; i < n; i++ {
			qi := q[i][lo:hi]
			for j := 0; j < n; j++ {
				scores[j] = mat.Vec(qi).Dot(k[j][lo:hi]) * scale
			}
			mat.Softmax(attn, scores)
			out := headOut[i][lo:hi]
			for j := 0; j < n; j++ {
				if attn[j] == 0 {
					continue
				}
				mat.Vec(out).AddScaled(attn[j], v[j][lo:hi])
			}
		}
	}
	return m.Wo.InferSeq(headOut, a)
}

// Attention returns the cached attention matrix of one head: row i is token
// i's distribution over the sequence (Fig. 5's heatmap rows).
func (m *MultiHeadAttention) Attention(head int) []mat.Vec {
	if m.cache == nil || head < 0 || head >= m.Heads {
		return nil
	}
	return m.cache.attn[head]
}

// BackwardSeq backpropagates through the most recent ForwardSeq and returns
// per-token input gradients.
func (m *MultiHeadAttention) BackwardSeq(dys []mat.Vec) []mat.Vec {
	c := m.cache
	n := len(dys)
	scale := 1 / math.Sqrt(float64(m.HeadDim))

	dHeadOut := m.Wo.BackwardSeq(c.outputsRaw, dys)
	dq := make([]mat.Vec, n)
	dk := make([]mat.Vec, n)
	dv := make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		dq[i] = mat.NewVec(m.Dim)
		dk[i] = mat.NewVec(m.Dim)
		dv[i] = mat.NewVec(m.Dim)
	}
	for h := 0; h < m.Heads; h++ {
		lo := h * m.HeadDim
		hi := lo + m.HeadDim
		for i := 0; i < n; i++ {
			a := c.attn[h][i]
			dOut := mat.Vec(dHeadOut[i][lo:hi])
			// dA[j] = dOut · v_j ; dv_j += a[j] * dOut
			dA := mat.NewVec(n)
			for j := 0; j < n; j++ {
				dA[j] = dOut.Dot(c.v[j][lo:hi])
				mat.Vec(dv[j][lo:hi]).AddScaled(a[j], dOut)
			}
			// Softmax backward: dS[j] = a[j]*(dA[j] - Σ_k a[k] dA[k])
			var dot float64
			for j := 0; j < n; j++ {
				dot += a[j] * dA[j]
			}
			for j := 0; j < n; j++ {
				dS := a[j] * (dA[j] - dot) * scale
				if dS == 0 {
					continue
				}
				mat.Vec(dq[i][lo:hi]).AddScaled(dS, c.k[j][lo:hi])
				mat.Vec(dk[j][lo:hi]).AddScaled(dS, c.q[i][lo:hi])
			}
		}
	}
	dxs := make([]mat.Vec, n)
	dxq := m.Wq.BackwardSeq(c.xs, dq)
	dxk := m.Wk.BackwardSeq(c.xs, dk)
	dxv := m.Wv.BackwardSeq(c.xs, dv)
	for i := 0; i < n; i++ {
		dx := dxq[i].Clone()
		dx.Add(dxk[i])
		dx.Add(dxv[i])
		dxs[i] = dx
	}
	return dxs
}
