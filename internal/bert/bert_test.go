package bert

import (
	"math"
	"math/rand"
	"testing"

	"saccs/internal/corpus"
	"saccs/internal/mat"
	"saccs/internal/nn"
	"saccs/internal/tokenize"
)

func tinyConfig() Config {
	return Config{Layers: 1, Heads: 2, Dim: 8, FFDim: 12, MaxLen: 16}
}

func tinyVocab() *tokenize.Vocab {
	v := tokenize.NewVocab()
	v.AddAll([]string{"the", "food", "is", "delicious", "staff", "friendly", "and", "."})
	return v
}

func numGrad(f func() float64, x *float64) float64 {
	const h = 1e-5
	old := *x
	*x = old + h
	up := f()
	*x = old - h
	down := f()
	*x = old
	return (up - down) / (2 * h)
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestModelGradCheck verifies the full transformer backward pass — attention,
// layer norm, GELU FFN, residuals, embeddings — against finite differences.
func TestModelGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := tinyVocab()
	m := New(rng, tinyConfig(), v)
	ids := v.Encode([]string{"the", "food", "is", "delicious"})
	gold := v.ID("staff")

	loss := func() float64 {
		hs := m.Encode(ids)
		var s float64
		for _, h := range hs {
			logits := m.MLMHead.Forward(h)
			l, _ := nn.SoftmaxCE(logits, gold)
			s += l
		}
		return s
	}

	params := m.Params()
	nn.ZeroGrads(params)
	hs := m.Encode(ids)
	dhs := make([]mat.Vec, len(hs))
	for i, h := range hs {
		logits := m.MLMHead.Forward(h)
		_, dLogits := nn.SoftmaxCE(logits, gold)
		dhs[i] = m.MLMHead.Backward(h, dLogits)
	}
	m.Backward(dhs)

	analytic := map[*nn.Param][]float64{}
	for _, p := range params {
		analytic[p] = append([]float64(nil), p.G.Data...)
	}
	checked := 0
	for _, p := range params {
		// Spot-check a handful of coordinates per tensor to keep runtime sane.
		step := len(p.W.Data)/3 + 1
		for i := 0; i < len(p.W.Data); i += step {
			want := numGrad(loss, &p.W.Data[i])
			if relErr(analytic[p][i], want) > 1e-4 {
				t.Fatalf("%s grad[%d]: got %v want %v", p.Name, i, analytic[p][i], want)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("too few coordinates checked: %d", checked)
	}
}

func TestAttentionRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := tinyVocab()
	m := New(rng, tinyConfig(), v)
	toks := []string{"the", "staff", "is", "friendly", "."}
	m.EncodeTokens(toks)
	for layer := 0; layer < m.Cfg.Layers; layer++ {
		for head := 0; head < m.Cfg.Heads; head++ {
			attn := m.Attention(layer, head)
			if len(attn) != len(toks) {
				t.Fatalf("attention shape: %d rows", len(attn))
			}
			for i, row := range attn {
				if len(row) != len(toks) {
					t.Fatalf("row %d has %d cols", i, len(row))
				}
				if math.Abs(row.Sum()-1) > 1e-9 {
					t.Fatalf("row %d sums to %v", i, row.Sum())
				}
			}
		}
	}
	if m.Attention(99, 0) != nil || m.Attention(0, 99) != nil {
		t.Fatal("out-of-range attention access must return nil")
	}
}

func TestEncodeTruncatesToMaxLen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := tinyConfig()
	cfg.MaxLen = 4
	m := New(rng, cfg, tinyVocab())
	long := make([]int, 10)
	hs := m.Encode(long)
	if len(hs) != 4 {
		t.Fatalf("expected truncation to 4, got %d", len(hs))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	v := tinyVocab()
	a := New(rand.New(rand.NewSource(4)), tinyConfig(), v)
	b := New(rand.New(rand.NewSource(4)), tinyConfig(), v)
	ha := a.EncodeTokens([]string{"the", "food"})
	hb := b.EncodeTokens([]string{"the", "food"})
	for i := range ha {
		for j := range ha[i] {
			if ha[i][j] != hb[i][j] {
				t.Fatal("same seed must produce identical encodings")
			}
		}
	}
}

func TestContextualEmbeddings(t *testing.T) {
	// The same token in different contexts must get different vectors —
	// that's the point of using BERT over static embeddings.
	rng := rand.New(rand.NewSource(5))
	v := tinyVocab()
	m := New(rng, tinyConfig(), v)
	h1 := m.EncodeTokens([]string{"the", "food", "is", "delicious"})
	foodIn1 := h1[1].Clone()
	h2 := m.EncodeTokens([]string{"friendly", "food", "and", "staff"})
	foodIn2 := h2[1]
	diff := foodIn1.Clone()
	diff.Sub(foodIn2)
	if diff.Norm() < 1e-9 {
		t.Fatal("contextual embeddings are identical across contexts")
	}
}

func TestTrainMLMReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gen := rand.New(rand.NewSource(7))
	sents := corpus.GeneralCorpus(gen, 60)
	v := tokenize.NewVocab()
	for _, s := range sents {
		v.AddAll(s)
	}
	m := New(rng, Config{Layers: 1, Heads: 2, Dim: 16, FFDim: 32, MaxLen: 24}, v)

	evalRng := rand.New(rand.NewSource(8))
	before := m.MLMLoss(evalRng, sents, 0.15)
	cfg := DefaultMLMConfig()
	cfg.Epochs = 4
	m.TrainMLM(rng, sents, cfg)
	evalRng = rand.New(rand.NewSource(8))
	after := m.MLMLoss(evalRng, sents, 0.15)
	if after >= before {
		t.Fatalf("MLM training did not reduce loss: before=%v after=%v", before, after)
	}
	if after > before*0.8 {
		t.Fatalf("MLM loss barely moved: before=%v after=%v", before, after)
	}
}

func TestSentenceVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New(rng, tinyConfig(), tinyVocab())
	sv := m.SentenceVec([]string{"the", "food", "is", "delicious"})
	if len(sv) != m.Cfg.Dim {
		t.Fatalf("sentence vector dim %d", len(sv))
	}
	if sv.Norm() == 0 {
		t.Fatal("sentence vector is zero")
	}
	empty := m.SentenceVec(nil)
	if empty.Norm() != 0 {
		t.Fatal("empty sentence must embed to zero")
	}
}

func TestDomainPostTrainingShiftsEmbeddings(t *testing.T) {
	// Post-training on reviews (§4.2) must change the encoder's view of
	// domain jargon more than general training alone.
	rng := rand.New(rand.NewSource(10))
	genRng := rand.New(rand.NewSource(11))
	general := corpus.GeneralCorpus(genRng, 40)
	v := tokenize.NewVocab()
	for _, s := range general {
		v.AddAll(s)
	}
	v.AddAll([]string{"the", "food", "is", "a", "killer", "la", "carte", "delicious", "."})
	m := New(rng, Config{Layers: 1, Heads: 2, Dim: 16, FFDim: 32, MaxLen: 24}, v)
	cfg := DefaultMLMConfig()
	cfg.Epochs = 2
	m.TrainMLM(rng, general, cfg)

	jargon := []string{"the", "food", "is", "a", "killer", "."}
	before := m.EncodeTokens(jargon)
	snapshot := make([]mat.Vec, len(before))
	for i, h := range before {
		snapshot[i] = h.Clone()
	}
	reviews := [][]string{
		{"the", "food", "is", "a", "killer", "."},
		{"la", "carte", "is", "delicious", "."},
		{"the", "food", "is", "delicious", "."},
	}
	m.TrainMLM(rng, reviews, MLMConfig{MaskProb: 0.3, LR: 1e-3, Epochs: 10, ClipNorm: 5})
	after := m.EncodeTokens(jargon)
	var moved float64
	for i := range after {
		d := after[i].Clone()
		d.Sub(snapshot[i])
		moved += d.Norm()
	}
	if moved < 1e-6 {
		t.Fatal("domain post-training did not shift jargon embeddings")
	}
}
