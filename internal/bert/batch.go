package bert

import (
	"math"
	"time"

	"saccs/internal/mat"
	"saccs/internal/nn"
)

// Batched inference: several token sequences share one forward pass, packed
// one token per row (sequence s occupies rows [starts[s], starts[s]+lens[s])
// of every intermediate matrix). The linear projections of all sequences run
// as single GEMMs on mat.MatMulInto's fast path; attention, layer norm, GELU,
// and residuals are per-row or per-sequence and execute exactly the serial
// InferSeq arithmetic, so each sequence's hidden states are bit-identical to
// an individual inferArena call. The cross-request extraction batcher
// (internal/core) relies on that identity to keep batched and solo decodes
// indistinguishable.

// InferBatchTokensArena tokenizes and encodes several sequences in one
// arena-backed forward pass. It returns the packed hidden states (one row
// per token) plus the starts/lens addressing of the batch; sequences longer
// than MaxLen are truncated, exactly as in the serial path. Everything —
// including the returned matrix — is carved from the caller's arena. Writes
// no receiver state; safe for concurrent callers, each with its own arena.
func (m *Model) InferBatchTokensArena(seqs [][]string, a *nn.Arena) (*mat.Mat, []int, []int) {
	total := 0
	starts := a.Ints(len(seqs))
	lens := a.Ints(len(seqs))
	for s, seq := range seqs {
		n := len(seq)
		if n > m.Cfg.MaxLen {
			n = m.Cfg.MaxLen
		}
		starts[s], lens[s] = total, n
		total += n
	}
	if m.o != nil {
		defer m.encHist.ObserveSince(time.Now())
		m.encTokens.Add(int64(total))
	}
	x := a.MatRaw(total, m.Cfg.Dim)
	for s, seq := range seqs {
		base := starts[s]
		for i := 0; i < lens[s]; i++ {
			row := x.Row(base + i)
			m.TokEmb.LookupInto(row, m.Vocab.ID(seq[i]))
			row.Add(m.PosEmb.Table.W.Row(i))
		}
	}
	h := x
	for _, b := range m.Blocks {
		h = b.InferBatch(h, starts, lens, a)
	}
	return h, starts, lens
}

// InferBatch runs the encoder layer over packed sequences. Per row (token)
// the residual/norm/FFN arithmetic is InferSeq's exactly; the four linear
// projections run as batch GEMMs.
func (b *Block) InferBatch(xs *mat.Mat, starts, lens []int, a *nn.Arena) *mat.Mat {
	n := xs.Rows
	attnOut := b.Attn.InferBatch(xs, starts, lens, a)
	res1 := a.MatRaw(n, xs.Cols)
	for i := 0; i < n; i++ {
		v := res1.Row(i)
		copy(v, xs.Row(i))
		v.Add(attnOut.Row(i))
	}
	h1 := a.MatRaw(n, xs.Cols)
	for i := 0; i < n; i++ {
		b.LN1.ApplyInto(h1.Row(i), res1.Row(i))
	}
	ffPre := b.FF1.InferBatch(h1, a)
	ffAct := a.MatRaw(n, ffPre.Cols)
	for i := 0; i < n; i++ {
		nn.GELUInto(ffAct.Row(i), ffPre.Row(i))
	}
	ffnOuts := b.FF2.InferBatch(ffAct, a)
	res2 := a.MatRaw(n, xs.Cols)
	for i := 0; i < n; i++ {
		v := res2.Row(i)
		copy(v, h1.Row(i))
		v.Add(ffnOuts.Row(i))
	}
	out := a.MatRaw(n, xs.Cols)
	for i := 0; i < n; i++ {
		b.LN2.ApplyInto(out.Row(i), res2.Row(i))
	}
	return out
}

// InferBatch runs self-attention over packed sequences: the Q/K/V/O
// projections are batch GEMMs over every token row at once, while the
// score/softmax/weighted-sum loops run per sequence with the exact loop
// structure of InferSeq — including the softmax-zero skip — so attention
// output rows are bit-identical to the serial path's vectors.
func (m *MultiHeadAttention) InferBatch(xs *mat.Mat, starts, lens []int, a *nn.Arena) *mat.Mat {
	q := m.Wq.InferBatch(xs, a)
	k := m.Wk.InferBatch(xs, a)
	v := m.Wv.InferBatch(xs, a)
	scale := 1 / math.Sqrt(float64(m.HeadDim))
	headOut := a.Mat(xs.Rows, m.Dim)
	maxLen := 0
	for _, n := range lens {
		if n > maxLen {
			maxLen = n
		}
	}
	scores := a.Vec(maxLen)
	attn := a.Vec(maxLen)
	for s, n := range lens {
		base := starts[s]
		sc, at := scores[:n], attn[:n]
		for h := 0; h < m.Heads; h++ {
			lo := h * m.HeadDim
			hi := lo + m.HeadDim
			for i := 0; i < n; i++ {
				// The dot and weighted-sum loops below are Vec.Dot and
				// Vec.AddScaled inlined (same per-element order, ascending
				// k/j, zero-weight skip preserved) — the call and slicing
				// overhead of 2·n² tiny vector ops per head dominates at
				// HeadDim 8, so the serial kernels are spelled out here.
				qi := q.Row(base + i)[lo:hi:hi]
				// Two keys per iteration: each dot keeps Vec.Dot's ascending-d
				// accumulation (bit-identical), but the two independent sum
				// chains overlap in the FP pipeline where a single chain is
				// latency-bound.
				j := 0
				for ; j+1 < n; j += 2 {
					kj0 := k.Row(base + j)[lo:hi:hi]
					kj1 := k.Row(base + j + 1)[lo:hi:hi]
					var s0, s1 float64
					for d, qv := range qi {
						s0 += qv * kj0[d]
						s1 += qv * kj1[d]
					}
					sc[j] = s0 * scale
					sc[j+1] = s1 * scale
				}
				for ; j < n; j++ {
					kj := k.Row(base + j)[lo:hi:hi]
					var s float64
					for d, qv := range qi {
						s += qv * kj[d]
					}
					sc[j] = s * scale
				}
				mat.Softmax(at, sc)
				out := headOut.Row(base + i)[lo:hi:hi]
				for j := 0; j < n; j++ {
					aj := at[j]
					if aj == 0 {
						continue
					}
					vj := v.Row(base + j)[lo:hi:hi]
					for d := range out {
						out[d] += aj * vj[d]
					}
				}
			}
		}
	}
	return m.Wo.InferBatch(headOut, a)
}
