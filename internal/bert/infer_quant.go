package bert

import (
	"math"
	"time"

	"saccs/internal/mat"
	"saccs/internal/nn"
)

// Quantized batched inference: the reduced-precision twin of batch.go.
// Activations flow as float32; the eight linear projections per block (four
// attention, two FFN — plus Q/K/V/O weights shared across sequences) run on
// the int8 GEMM with dynamic activation quantization, while the
// drift-sensitive stages — LayerNorm (moments in float64), softmax
// (float64 exponentials rounded once), GELU, residual adds — stay in the
// float32 tier. The same packed starts/lens layout as the float64 batch
// path; every stage is row- or sequence-local, so a solo decode through a
// one-sequence batch is bit-identical to the same sequence inside any batch.

// InferQuantBatchTokensArena tokenizes and encodes several sequences in one
// reduced-precision forward pass, returning packed float32 hidden states
// plus the starts/lens addressing. Sequences longer than MaxLen are
// truncated, exactly as in the float64 paths. Writes no receiver state; safe
// for concurrent callers, each with its own arena.
func (m *Model) InferQuantBatchTokensArena(seqs [][]string, a *nn.Arena, p nn.Precision) (*mat.Mat32, []int, []int) {
	total := 0
	starts := a.Ints(len(seqs))
	lens := a.Ints(len(seqs))
	for s, seq := range seqs {
		n := len(seq)
		if n > m.Cfg.MaxLen {
			n = m.Cfg.MaxLen
		}
		starts[s], lens[s] = total, n
		total += n
	}
	if m.o != nil {
		defer m.encHist.ObserveSince(time.Now())
		m.encTokens.Add(int64(total))
	}
	x := a.Mat32Raw(total, m.Cfg.Dim)
	for s, seq := range seqs {
		base := starts[s]
		for i := 0; i < lens[s]; i++ {
			row := x.Row(base + i)
			emb := m.TokEmb.Table.W.Row(m.Vocab.ID(seq[i]))
			pos := m.PosEmb.Table.W.Row(i)
			for j := range row {
				row[j] = float32(emb[j] + pos[j])
			}
		}
	}
	h := x
	for _, b := range m.Blocks {
		h = b.InferQuantBatch(h, starts, lens, a)
	}
	_ = p // every block projection is int8 in both quantized modes
	return h, starts, lens
}

// InferQuantBatch runs the encoder layer over packed sequences in reduced
// precision: int8 projections, float32 residuals/GELU, float64-moment layer
// norms.
func (b *Block) InferQuantBatch(xs *mat.Mat32, starts, lens []int, a *nn.Arena) *mat.Mat32 {
	n := xs.Rows
	attnOut := b.Attn.InferQuantBatch(xs, starts, lens, a)
	res1 := a.Mat32Raw(n, xs.Cols)
	for i := 0; i < n; i++ {
		v := res1.Row(i)
		x := xs.Row(i)
		ao := attnOut.Row(i)
		for j := range v {
			v[j] = x[j] + ao[j]
		}
	}
	h1 := a.Mat32Raw(n, xs.Cols)
	for i := 0; i < n; i++ {
		b.LN1.ApplyInto32(h1.Row(i), res1.Row(i))
	}
	ffPre := b.FF1.InferQuantBatch(h1, a)
	ffAct := a.Mat32Raw(n, ffPre.Cols)
	for i := 0; i < n; i++ {
		nn.GELUInto32(ffAct.Row(i), ffPre.Row(i))
	}
	ffnOuts := b.FF2.InferQuantBatch(ffAct, a)
	res2 := a.Mat32Raw(n, xs.Cols)
	for i := 0; i < n; i++ {
		v := res2.Row(i)
		h := h1.Row(i)
		fo := ffnOuts.Row(i)
		for j := range v {
			v[j] = h[j] + fo[j]
		}
	}
	out := a.Mat32Raw(n, xs.Cols)
	for i := 0; i < n; i++ {
		b.LN2.ApplyInto32(out.Row(i), res2.Row(i))
	}
	return out
}

// InferQuantBatch runs self-attention over packed sequences in reduced
// precision: Q/K/V/O are int8 GEMMs, the score/softmax/weighted-sum loops
// keep InferBatch's exact structure (two-key unroll, zero-weight skip) with
// float32 accumulation and float64 exponentials in the softmax.
func (m *MultiHeadAttention) InferQuantBatch(xs *mat.Mat32, starts, lens []int, a *nn.Arena) *mat.Mat32 {
	q := m.Wq.InferQuantBatch(xs, a)
	k := m.Wk.InferQuantBatch(xs, a)
	v := m.Wv.InferQuantBatch(xs, a)
	scale := float32(1 / math.Sqrt(float64(m.HeadDim)))
	headOut := a.Mat32(xs.Rows, m.Dim)
	maxLen := 0
	for _, n := range lens {
		if n > maxLen {
			maxLen = n
		}
	}
	scores := a.F32Raw(maxLen)
	attn := a.F32Raw(maxLen)
	for s, n := range lens {
		base := starts[s]
		sc, at := scores[:n], attn[:n]
		for h := 0; h < m.Heads; h++ {
			lo := h * m.HeadDim
			hi := lo + m.HeadDim
			for i := 0; i < n; i++ {
				qi := q.Row(base + i)[lo:hi:hi]
				j := 0
				for ; j+1 < n; j += 2 {
					kj0 := k.Row(base + j)[lo:hi:hi]
					kj1 := k.Row(base + j + 1)[lo:hi:hi]
					var s0, s1 float32
					for d, qv := range qi {
						s0 += qv * kj0[d]
						s1 += qv * kj1[d]
					}
					sc[j] = s0 * scale
					sc[j+1] = s1 * scale
				}
				for ; j < n; j++ {
					kj := k.Row(base + j)[lo:hi:hi]
					var s float32
					for d, qv := range qi {
						s += qv * kj[d]
					}
					sc[j] = s * scale
				}
				mat.Softmax32(at, sc)
				out := headOut.Row(base + i)[lo:hi:hi]
				for j := 0; j < n; j++ {
					aj := at[j]
					if aj == 0 {
						continue
					}
					vj := v.Row(base + j)[lo:hi:hi]
					for d := range out {
						out[d] += aj * vj[d]
					}
				}
			}
		}
	}
	return m.Wo.InferQuantBatch(headOut, a)
}

// ApplyInto32 normalizes the float32 row x into y with the moments computed
// in float64 — layer norm is the drift amplifier of the stack (it divides by
// a variance that quantization error perturbs), so the mixed mode keeps its
// internals at full precision and rounds once on output.
func (ln *LayerNorm) ApplyInto32(y, x mat.Vec32) {
	var sum float64
	for _, v := range x {
		sum += float64(v)
	}
	mean := sum / float64(len(x))
	var varSum float64
	for _, v := range x {
		d := float64(v) - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum/float64(len(x)) + ln.Eps)
	for i, v := range x {
		y[i] = float32((float64(v)-mean)/std*ln.Gain.W.Data[i] + ln.Bias.W.Data[i])
	}
}
