package bert

import (
	"math/rand"
	"testing"

	"saccs/internal/nn"
	"saccs/internal/tokenize"
)

// TestInferBatchMatchesSerial pins the core identity the extraction batcher
// rests on: every sequence's hidden states out of the shared batch forward
// are bit-identical to a solo InferTokensArena call.
func TestInferBatchMatchesSerial(t *testing.T) {
	words := []string{"the", "pasta", "was", "great", "but", "service",
		"slow", "and", "rude", "staff", "lovely", "room"}
	v := tokenize.NewVocab()
	v.AddAll(words)
	rng := rand.New(rand.NewSource(3))
	m := New(rng, Config{Layers: 2, Heads: 4, Dim: 32, FFDim: 48, MaxLen: 6}, v)

	mkSeq := func(n int) []string {
		s := make([]string, n)
		for i := range s {
			s[i] = words[rng.Intn(len(words))]
		}
		return s
	}
	batches := [][][]string{
		{mkSeq(3), mkSeq(5)},
		{mkSeq(1), mkSeq(0), mkSeq(4), mkSeq(2)},
		{mkSeq(9), mkSeq(6)}, // beyond MaxLen: truncation must match serial
		{mkSeq(2), mkSeq(2), mkSeq(2), mkSeq(2), mkSeq(2), mkSeq(2), mkSeq(2), mkSeq(2)},
	}
	for bi, seqs := range batches {
		var a nn.Arena
		h, starts, lens := m.InferBatchTokensArena(seqs, &a)
		for s, seq := range seqs {
			var sa nn.Arena
			want := m.InferTokensArena(seq, &sa)
			if len(want) != lens[s] {
				t.Fatalf("batch %d seq %d: %d rows, serial %d", bi, s, lens[s], len(want))
			}
			for tt, wv := range want {
				gv := h.Row(starts[s] + tt)
				for i, w := range wv {
					if gv[i] != w {
						t.Fatalf("batch %d seq %d token %d elem %d = %v, want %v (bit-exact)",
							bi, s, tt, i, gv[i], w)
					}
				}
			}
		}
	}
}
