// Package profile implements the first future-work item of §7: "subjective
// digital assistants should be able to take into account user profiles and
// adjust their search and interaction behavior accordingly". A Profile
// accumulates the subjective tags a user asks about across sessions; at
// ranking time, entities strong in the user's standing preferences get a
// personalized boost even when the current utterance doesn't mention them.
package profile

import (
	"math"
	"sort"

	"saccs/internal/index"
	"saccs/internal/search"
	"saccs/internal/sim"
)

// Profile is one user's accumulated subjective preferences.
type Profile struct {
	// UserID identifies the user.
	UserID string

	measure sim.Measure
	// weights holds a decayed interest weight per canonical tag string.
	weights map[string]float64
	// Decay multiplies existing weights on every observation (recency bias).
	Decay float64
}

// New returns an empty profile. A nil measure defaults to conceptual
// similarity.
func New(userID string, measure sim.Measure) *Profile {
	if measure == nil {
		measure = sim.NewConceptual()
	}
	return &Profile{
		UserID:  userID,
		measure: measure,
		weights: map[string]float64{},
		Decay:   0.9,
	}
}

// Observe records that the user asked about these tags. Similar existing
// interests are reinforced rather than duplicated: a new tag merges into the
// closest stored tag when their similarity exceeds 0.8.
func (p *Profile) Observe(tags []string) {
	for k := range p.weights {
		p.weights[k] *= p.Decay
	}
	for _, tag := range tags {
		bestKey, bestSim := "", 0.0
		for k := range p.weights {
			if s := p.measure.Phrase(tag, k); s > bestSim {
				bestKey, bestSim = k, s
			}
		}
		if bestSim > 0.8 {
			p.weights[bestKey] += 1
		} else {
			p.weights[tag] += 1
		}
	}
}

// Interest returns the user's interest in a tag: the maximum stored weight
// scaled by similarity, normalized to [0, 1] by the largest weight.
func (p *Profile) Interest(tag string) float64 {
	maxW := 0.0
	for _, w := range p.weights {
		if w > maxW {
			maxW = w
		}
	}
	if maxW == 0 {
		return 0
	}
	best := 0.0
	for k, w := range p.weights {
		s := p.measure.Phrase(tag, k) * w / maxW
		if s > best {
			best = s
		}
	}
	return math.Min(1, best)
}

// Preferences returns the stored tags sorted by weight descending.
func (p *Profile) Preferences() []string {
	keys := make([]string, 0, len(p.weights))
	for k := range p.weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if p.weights[keys[i]] != p.weights[keys[j]] {
			return p.weights[keys[i]] > p.weights[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// TagResolver is the index read surface personalization needs. Both
// *index.Index and a pinned *index.Snapshot satisfy it; pass a snapshot when
// re-scoring inside a request so the boost reads the same index generation
// as the ranking it adjusts.
type TagResolver interface {
	Resolve(tag string, thetaFilter float64) []index.Entry
}

// Personalize re-scores a ranked list: each entity's score is blended with
// its degrees of truth on the user's top standing preferences, weighted by
// blend ∈ [0,1] (0 = no personalization). The ranked order of the original
// query's scores is preserved under ties.
func (p *Profile) Personalize(ix TagResolver, ranked []search.Scored, blend float64, topPrefs int) []search.Scored {
	if blend <= 0 || len(p.weights) == 0 {
		return ranked
	}
	prefs := p.Preferences()
	if topPrefs > 0 && len(prefs) > topPrefs {
		prefs = prefs[:topPrefs]
	}
	// Gather the user-preference degree per entity.
	prefScore := map[string]float64{}
	for _, tag := range prefs {
		w := p.Interest(tag)
		for _, e := range ix.Resolve(tag, 0.45) {
			prefScore[e.EntityID] += w * e.Degree
		}
	}
	if len(prefs) > 0 {
		for id := range prefScore {
			prefScore[id] /= float64(len(prefs))
		}
	}
	out := make([]search.Scored, len(ranked))
	for i, s := range ranked {
		out[i] = search.Scored{
			EntityID: s.EntityID,
			Score:    (1-blend)*s.Score + blend*prefScore[s.EntityID],
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}
