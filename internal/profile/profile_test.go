package profile

import (
	"testing"

	"saccs/internal/index"
	"saccs/internal/search"
	"saccs/internal/sim"
)

func TestObserveAndInterest(t *testing.T) {
	p := New("u1", nil)
	if p.Interest("delicious food") != 0 {
		t.Fatal("empty profile must have zero interest")
	}
	p.Observe([]string{"delicious food"})
	if got := p.Interest("delicious food"); got != 1 {
		t.Fatalf("exact interest: %v", got)
	}
	// Conceptually related tag: nonzero but lower.
	rel := p.Interest("tasty food")
	if rel <= 0 || rel >= 1 {
		t.Fatalf("related interest: %v", rel)
	}
	if un := p.Interest("fast delivery"); un >= rel {
		t.Fatalf("unrelated interest %v must be below related %v", un, rel)
	}
}

func TestObserveMergesSimilarTags(t *testing.T) {
	p := New("u1", nil)
	p.Observe([]string{"delicious food"})
	p.Observe([]string{"delicious food"}) // reinforce, not duplicate
	if got := len(p.Preferences()); got != 1 {
		t.Fatalf("similar observations must merge: %v", p.Preferences())
	}
	p.Observe([]string{"nice staff"})
	prefs := p.Preferences()
	if len(prefs) != 2 || prefs[0] != "delicious food" {
		t.Fatalf("preferences: %v", prefs)
	}
}

func TestDecayShiftsPreferences(t *testing.T) {
	p := New("u1", nil)
	p.Observe([]string{"delicious food"})
	for i := 0; i < 6; i++ {
		p.Observe([]string{"quick service"})
	}
	if p.Preferences()[0] != "quick service" {
		t.Fatalf("recent interest must dominate: %v", p.Preferences())
	}
}

func TestPersonalizeBoostsPreferredEntities(t *testing.T) {
	measure := sim.NewConceptual()
	ix := index.New(measure, 0.55)
	ix.Build([]string{"romantic ambiance"}, []index.EntityReviews{
		{EntityID: "cozy", ReviewCount: 10, Tags: []string{"romantic ambiance", "romantic ambiance", "romantic ambiance"}},
		{EntityID: "loud", ReviewCount: 10, Tags: nil},
	})

	p := New("u1", measure)
	p.Observe([]string{"romantic ambiance"})

	// The current query ties both entities.
	ranked := []search.Scored{{EntityID: "loud", Score: 0.5}, {EntityID: "cozy", Score: 0.5}}
	got := p.Personalize(ix, ranked, 0.5, 5)
	if got[0].EntityID != "cozy" {
		t.Fatalf("personalization must break the tie toward the user's standing preference: %v", got)
	}
	// blend=0 is a no-op.
	same := p.Personalize(ix, ranked, 0, 5)
	for i := range same {
		if same[i] != ranked[i] {
			t.Fatal("blend=0 must not reorder")
		}
	}
	// Empty profile is a no-op.
	empty := New("u2", measure)
	same = empty.Personalize(ix, ranked, 0.5, 5)
	for i := range same {
		if same[i] != ranked[i] {
			t.Fatal("empty profile must not reorder")
		}
	}
}
