// Package yelp generates the synthetic stand-in for the Yelp Open Dataset of
// §6.1: a world of entities (by default 280 Italian restaurants in Montreal,
// ~7000 reviews — the paper's filtered slice), each with a hidden latent
// quality vector over the domain's subjective features. Reviews are text
// renderings of noisy samples from that latent vector; star ratings
// aggregate it coarsely (the paper's §1 critique of star ratings); Yelp-style
// queryable attributes (NoiseLevel, Ambience, GoodForGroups, ...) quantize a
// few of its coordinates — exactly the coarse signal the SIM baseline of
// §6.2 gets to use.
package yelp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"saccs/internal/corpus"
	"saccs/internal/lexicon"
)

// Review is one generated review: surface text plus the (hidden) gold
// annotation used only by the crowd simulator.
type Review struct {
	EntityID string
	// Sentences carry the gold mention structure; Text is what systems see.
	Sentences []corpus.Sentence
	Text      string
}

// Entity is one business.
type Entity struct {
	ID      string
	Name    string
	City    string
	Cuisine string
	// Quality is the latent per-feature quality in [0,1] — the ground truth
	// reviews are sampled from. Index = lexicon.Feature.ID.
	Quality []float64
	// Stars is the 1–5 aggregate rating derived from Quality plus noise.
	Stars float64
	// Attrs are Yelp-style queryable attribute values.
	Attrs   map[string]string
	Reviews []*Review
}

// World is the generated dataset.
type World struct {
	Domain   *lexicon.Domain
	Entities []*Entity
}

// ReviewCount returns the total number of reviews in the world.
func (w *World) ReviewCount() int {
	n := 0
	for _, e := range w.Entities {
		n += len(e.Reviews)
	}
	return n
}

// Entity returns the entity with the given id, or nil.
func (w *World) Entity(id string) *Entity {
	for _, e := range w.Entities {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Config tunes world generation.
type Config struct {
	// Entities is the number of businesses (paper slice: 280).
	Entities int
	// MeanReviews is the mean reviews per entity (paper slice: ~25).
	MeanReviews int
	// Seed drives all randomness.
	Seed int64
	// City and Cuisine fill the objective slots.
	City, Cuisine string
	// PolarityNoise is the probability a review mention contradicts the
	// latent quality (reviewer disagreement).
	PolarityNoise float64
	// SentenceOpts tunes the review grammar.
	SentenceOpts corpus.Options
}

// DefaultConfig matches the paper's filtered Yelp slice.
func DefaultConfig() Config {
	return Config{
		Entities:      280,
		MeanReviews:   25,
		Seed:          2021,
		City:          "Montreal",
		Cuisine:       "Italian",
		PolarityNoise: 0.1,
	}
}

// FastConfig is the CI-scale world.
func FastConfig() Config {
	cfg := DefaultConfig()
	cfg.Entities = 36
	cfg.MeanReviews = 16
	return cfg
}

// Attribute names exposed to the SIM baseline.
const (
	AttrNoiseLevel    = "NoiseLevel"
	AttrAmbience      = "Ambience"
	AttrGoodForGroups = "GoodForGroups"
	AttrPriceRange    = "RestaurantsPriceRange"
	AttrDelivery      = "RestaurantsDelivery"
	AttrOutdoor       = "OutdoorSeating"
)

// AttributeValues lists each queryable attribute's value set, mirroring the
// Yelp interface the SIM baseline sweeps (§6.2).
func AttributeValues() map[string][]string {
	return map[string][]string{
		AttrNoiseLevel:    {"quiet", "average", "loud"},
		AttrAmbience:      {"romantic", "casual", "classy"},
		AttrGoodForGroups: {"true", "false"},
		AttrPriceRange:    {"1", "2", "3", "4"},
		AttrDelivery:      {"true", "false"},
		AttrOutdoor:       {"true", "false"},
	}
}

// Generate builds a world from the restaurants domain.
func Generate(cfg Config) *World {
	return GenerateDomain(cfg, lexicon.Restaurants())
}

// GenerateDomain builds a world over an arbitrary domain lexicon.
func GenerateDomain(cfg Config, domain *lexicon.Domain) *World {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := corpus.NewGenerator(domain, cfg.Seed+1, cfg.SentenceOpts)
	w := &World{Domain: domain}
	nf := len(domain.Features)
	for i := 0; i < cfg.Entities; i++ {
		e := &Entity{
			ID:      fmt.Sprintf("e%03d", i),
			Name:    entityName(rng, domain, i),
			City:    cfg.City,
			Cuisine: cfg.Cuisine,
			Quality: make([]float64, nf),
			Attrs:   map[string]string{},
		}
		// Latent quality: a per-entity base level plus per-feature jitter,
		// so some places are broadly good and others mixed.
		base := 0.25 + 0.5*rng.Float64()
		for f := 0; f < nf; f++ {
			q := base + rng.NormFloat64()*0.25
			e.Quality[f] = clamp01(q)
		}
		e.Stars = starsFrom(rng, e.Quality)
		fillAttrs(rng, e, nf)

		// Popularity tracks quality, as on real review platforms: good
		// places accumulate more reviews — which is what makes Eq. 1's
		// log(|Re|+1) weight informative.
		meanQ := 0.0
		for _, q := range e.Quality {
			meanQ += q
		}
		meanQ /= float64(nf)
		nReviews := poissonish(rng, int(float64(cfg.MeanReviews)*(0.4+1.2*meanQ)+0.5))
		for r := 0; r < nReviews; r++ {
			e.Reviews = append(e.Reviews, makeReview(rng, gen, e, cfg.PolarityNoise, nf))
		}
		w.Entities = append(w.Entities, e)
	}
	return w
}

func entityName(rng *rand.Rand, domain *lexicon.Domain, i int) string {
	base := domain.Entities[i%len(domain.Entities)]
	if i < len(domain.Entities) {
		return base
	}
	return fmt.Sprintf("%s %d", base, i/len(domain.Entities)+1)
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// starsFrom collapses the quality vector to a noisy 1–5 rating — the coarse
// aggregate of §1 that hides per-aspect detail.
func starsFrom(rng *rand.Rand, q []float64) float64 {
	var mean float64
	for _, v := range q {
		mean += v
	}
	mean /= float64(len(q))
	stars := 1 + 4*mean + rng.NormFloat64()*0.3
	return math.Round(math.Max(1, math.Min(5, stars))*2) / 2
}

// Feature ids the attributes quantize (restaurant domain layout).
const (
	featRomantic = 3
	featPrices   = 7
	featView     = 8
	featQuiet    = 9
	featPortions = 11
	featDecor    = 12
	featDelivery = 13
	featSeating  = 17
)

func fillAttrs(rng *rand.Rand, e *Entity, nf int) {
	get := func(f int) float64 {
		if f < nf {
			return e.Quality[f]
		}
		return rng.Float64()
	}
	// Attributes observe the latent quality through noisy thresholds, so
	// SIM correlates with — but never equals — the subjective truth.
	noisy := func(q float64) float64 { return clamp01(q + rng.NormFloat64()*0.15) }

	switch q := noisy(get(featQuiet)); {
	case q > 0.62:
		e.Attrs[AttrNoiseLevel] = "quiet"
	case q > 0.35:
		e.Attrs[AttrNoiseLevel] = "average"
	default:
		e.Attrs[AttrNoiseLevel] = "loud"
	}
	switch q := noisy((get(featRomantic) + get(featDecor)) / 2); {
	case q > 0.6:
		e.Attrs[AttrAmbience] = "romantic"
	case q > 0.4:
		e.Attrs[AttrAmbience] = "classy"
	default:
		e.Attrs[AttrAmbience] = "casual"
	}
	e.Attrs[AttrGoodForGroups] = boolAttr(noisy((get(featSeating) + get(featPortions)) / 2))
	priceQ := noisy(get(featPrices))
	e.Attrs[AttrPriceRange] = fmt.Sprintf("%d", 1+int(3*(1-priceQ)+0.5))
	e.Attrs[AttrDelivery] = boolAttr(noisy(get(featDelivery)))
	e.Attrs[AttrOutdoor] = boolAttr(noisy(get(featView)))
}

func boolAttr(q float64) string {
	if q > 0.5 {
		return "true"
	}
	return "false"
}

// poissonish samples a review count with the given mean (>=1).
func poissonish(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	n := int(float64(mean) * (0.5 + rng.Float64()))
	if n < 1 {
		n = 1
	}
	return n
}

// makeReview renders 1–3 sentences mentioning 1–4 features, with polarity
// sampled from the entity's latent quality (plus reviewer noise).
func makeReview(rng *rand.Rand, gen *corpus.Generator, e *Entity, polarityNoise float64, nf int) *Review {
	nMentions := 2 + rng.Intn(4)
	perm := rng.Perm(nf)
	var specs []corpus.MentionSpec
	for _, f := range perm[:nMentions] {
		positive := rng.Float64() < e.Quality[f]
		if rng.Float64() < polarityNoise {
			positive = !positive
		}
		specs = append(specs, corpus.MentionSpec{FeatureID: f, Positive: positive})
	}
	var sentences []corpus.Sentence
	for start := 0; start < len(specs); {
		take := 1 + rng.Intn(2)
		if start+take > len(specs) {
			take = len(specs) - start
		}
		sentences = append(sentences, gen.SentenceFor(specs[start:start+take]))
		start += take
	}
	texts := make([]string, len(sentences))
	for i, s := range sentences {
		texts[i] = s.Text()
	}
	return &Review{
		EntityID:  e.ID,
		Sentences: sentences,
		Text:      strings.Join(texts, " "),
	}
}
