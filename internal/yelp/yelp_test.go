package yelp

import (
	"strings"
	"testing"
)

func TestGenerateFastWorld(t *testing.T) {
	w := Generate(FastConfig())
	if len(w.Entities) != 36 {
		t.Fatalf("entities: %d", len(w.Entities))
	}
	if w.ReviewCount() < 40 {
		t.Fatalf("too few reviews: %d", w.ReviewCount())
	}
	for _, e := range w.Entities {
		if e.ID == "" || e.Name == "" {
			t.Fatal("missing identity")
		}
		if e.City != "Montreal" || e.Cuisine != "Italian" {
			t.Fatalf("objective slots wrong: %s %s", e.City, e.Cuisine)
		}
		if len(e.Quality) != len(w.Domain.Features) {
			t.Fatalf("quality vector size %d", len(e.Quality))
		}
		for _, q := range e.Quality {
			if q < 0 || q > 1 {
				t.Fatalf("quality out of range: %v", q)
			}
		}
		if e.Stars < 1 || e.Stars > 5 {
			t.Fatalf("stars out of range: %v", e.Stars)
		}
		if len(e.Reviews) == 0 {
			t.Fatal("entity with no reviews")
		}
		for _, r := range e.Reviews {
			if r.EntityID != e.ID {
				t.Fatal("review entity mismatch")
			}
			if r.Text == "" || len(r.Sentences) == 0 {
				t.Fatal("empty review")
			}
		}
	}
}

func TestPaperScaleMatchesYelpSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("paper scale in -short mode")
	}
	w := Generate(DefaultConfig())
	if len(w.Entities) != 280 {
		t.Fatalf("paper slice has 280 entities, got %d", len(w.Entities))
	}
	// ~7061 reviews in the paper; generator should land in the same regime.
	if n := w.ReviewCount(); n < 4000 || n > 11000 {
		t.Fatalf("review count %d outside the paper's regime", n)
	}
}

func TestAttributesWellFormed(t *testing.T) {
	w := Generate(FastConfig())
	valid := AttributeValues()
	for _, e := range w.Entities {
		for name, vals := range valid {
			got, ok := e.Attrs[name]
			if !ok {
				t.Fatalf("entity missing attribute %s", name)
			}
			found := false
			for _, v := range vals {
				if got == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("attribute %s has invalid value %q", name, got)
			}
		}
	}
}

func TestAttributesCorrelateWithLatentQuality(t *testing.T) {
	// NoiseLevel must track the quiet-atmosphere feature on average — that
	// correlation is what makes SIM a strong baseline (§6.2).
	w := Generate(DefaultConfigSmall(200))
	var quietSum, loudSum float64
	var quietN, loudN int
	for _, e := range w.Entities {
		switch e.Attrs[AttrNoiseLevel] {
		case "quiet":
			quietSum += e.Quality[featQuiet]
			quietN++
		case "loud":
			loudSum += e.Quality[featQuiet]
			loudN++
		}
	}
	if quietN == 0 || loudN == 0 {
		t.Skip("degenerate sample")
	}
	if quietSum/float64(quietN) <= loudSum/float64(loudN) {
		t.Fatal("NoiseLevel attribute does not correlate with latent quiet quality")
	}
}

// DefaultConfigSmall returns a mid-sized config for statistical tests.
func DefaultConfigSmall(n int) Config {
	cfg := DefaultConfig()
	cfg.Entities = n
	cfg.MeanReviews = 5
	return cfg
}

func TestReviewPolarityTracksQuality(t *testing.T) {
	w := Generate(DefaultConfigSmall(120))
	// For entities with very high food quality, food mentions should be
	// mostly positive; very low, mostly negative.
	var hiPos, hiTot, loPos, loTot int
	for _, e := range w.Entities {
		q := e.Quality[0]
		for _, r := range e.Reviews {
			for _, s := range r.Sentences {
				for _, m := range s.Mentions {
					if m.FeatureID != 0 {
						continue
					}
					switch {
					case q > 0.8:
						hiTot++
						if m.Positive {
							hiPos++
						}
					case q < 0.2:
						loTot++
						if m.Positive {
							loPos++
						}
					}
				}
			}
		}
	}
	if hiTot < 5 || loTot < 5 {
		t.Skip("not enough extreme entities in sample")
	}
	if float64(hiPos)/float64(hiTot) <= float64(loPos)/float64(loTot) {
		t.Fatalf("review polarity ignores latent quality: hi=%d/%d lo=%d/%d", hiPos, hiTot, loPos, loTot)
	}
}

func TestDeterministicWorld(t *testing.T) {
	a, b := Generate(FastConfig()), Generate(FastConfig())
	if len(a.Entities) != len(b.Entities) {
		t.Fatal("non-deterministic entity count")
	}
	for i := range a.Entities {
		if a.Entities[i].Name != b.Entities[i].Name || a.Entities[i].Stars != b.Entities[i].Stars {
			t.Fatal("non-deterministic entities")
		}
		if len(a.Entities[i].Reviews) != len(b.Entities[i].Reviews) {
			t.Fatal("non-deterministic reviews")
		}
		for j := range a.Entities[i].Reviews {
			if a.Entities[i].Reviews[j].Text != b.Entities[i].Reviews[j].Text {
				t.Fatal("non-deterministic review text")
			}
		}
	}
}

func TestEntityLookup(t *testing.T) {
	w := Generate(FastConfig())
	e := w.Entities[3]
	if got := w.Entity(e.ID); got != e {
		t.Fatal("Entity lookup failed")
	}
	if w.Entity("nope") != nil {
		t.Fatal("unknown id must be nil")
	}
}

func TestEntityNamesUnique(t *testing.T) {
	w := Generate(FastConfig())
	seen := map[string]bool{}
	for _, e := range w.Entities {
		if seen[e.Name] {
			t.Fatalf("duplicate entity name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestReviewTextReadable(t *testing.T) {
	w := Generate(FastConfig())
	r := w.Entities[0].Reviews[0]
	if !strings.Contains(r.Text, " ") {
		t.Fatalf("review text suspicious: %q", r.Text)
	}
}
